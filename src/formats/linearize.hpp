// Mode-agnostic bit linearization of tensor coordinates, shared by the ALTO
// and BLCO formats.
//
// Each mode m gets ceil(log2(dim_m)) bits; bits are interleaved round-robin
// from the least significant position (ALTO's adaptive ordering), so nearby
// linearized values are nearby in *every* mode — the locality property both
// formats exploit.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// How mode bits are laid out within the linearized value.
enum class BitOrder {
  /// Round-robin interleave from the LSB (ALTO's adaptive ordering):
  /// nearby linearized values are nearby in every mode.
  kInterleaved,
  /// Each mode's bits contiguous, mode 0 most significant: equivalent to a
  /// mode-0-major lexicographic sort. Preserves locality only in mode 0 —
  /// kept as the ablation baseline for the interleaving design choice.
  kModeMajor,
};

/// Bit layout mapping N-mode coordinates to/from a single 64-bit value.
class LinearizedEncoding {
 public:
  /// Builds the layout for the given dimensions. Throws if the combined bit
  /// budget exceeds 64.
  explicit LinearizedEncoding(const std::vector<index_t>& dims,
                              BitOrder order = BitOrder::kInterleaved);

  BitOrder order() const { return order_; }

  int num_modes() const { return static_cast<int>(dims_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }

  /// Total bits used by one linearized coordinate.
  int total_bits() const { return total_bits_; }

  /// Bits assigned to one mode.
  int mode_bits(int mode) const { return bits_[static_cast<std::size_t>(mode)]; }

  /// Bitmask of the positions holding `mode`'s bits.
  lco_t mode_mask(int mode) const { return masks_[static_cast<std::size_t>(mode)]; }

  /// Packs coordinates into a linearized value.
  lco_t encode(const index_t* coords) const;

  /// Extracts one mode's coordinate from a linearized value.
  index_t decode(lco_t lco, int mode) const;

  /// Extracts all coordinates (coords must hold num_modes() entries).
  void decode_all(lco_t lco, index_t* coords) const;

 private:
  std::vector<index_t> dims_;
  BitOrder order_;
  std::vector<int> bits_;
  std::vector<lco_t> masks_;
  // Flat position table: positions_[mode][bit] = bit position within the lco.
  std::vector<std::vector<int>> positions_;
  int total_bits_ = 0;
};

}  // namespace cstf
