#include "formats/blco.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "formats/alto.hpp"

namespace cstf {

BlcoTensor::BlcoTensor(const SparseTensor& coo, index_t block_capacity,
                       BitOrder order)
    : encoding_(coo.dims(), order), block_capacity_(block_capacity) {
  CSTF_CHECK(block_capacity >= 1);

  // Reuse ALTO's sorted, merged linearized stream as the construction input.
  const AltoTensor alto(coo, order);
  const auto& lcos = alto.linearized();
  values_ = alto.values();
  const index_t n = static_cast<index_t>(lcos.size());

  for (index_t start = 0; start < n; start += block_capacity_) {
    const index_t end = std::min<index_t>(start + block_capacity_, n);
    BlcoBlock blk;
    blk.base = lcos[static_cast<std::size_t>(start)];
    blk.count = end - start;
    blk.value_offset = start;
    const lco_t span = lcos[static_cast<std::size_t>(end - 1)] - blk.base;
    blk.delta_bits = bits_for(span + 1);
    BitWriter writer(blk.delta_bits);
    for (index_t i = start; i < end; ++i) {
      writer.push(lcos[static_cast<std::size_t>(i)] - blk.base);
    }
    blk.packed_deltas = writer.take();
    blocks_.push_back(std::move(blk));
  }
}

double BlcoTensor::storage_bytes() const {
  double bytes = static_cast<double>(values_.size()) * sizeof(real_t);
  for (const auto& blk : blocks_) {
    bytes += static_cast<double>(blk.packed_deltas.size()) * sizeof(std::uint64_t);
    bytes += sizeof(BlcoBlock) - sizeof(std::vector<std::uint64_t>);
  }
  return bytes;
}

}  // namespace cstf
