// ALTO — Adaptive Linearized Tensor Order (Helal et al., ICS'21).
//
// The tensor is a single sorted array of bit-linearized coordinates plus
// values. One copy serves MTTKRP for every mode (unlike CSF, which needs a
// tree per root mode). This is the format the paper's modified-PLANC CPU
// baseline uses for its sparse MTTKRP (Section 4).
#pragma once

#include <vector>

#include "formats/linearize.hpp"

namespace cstf {

class AltoTensor {
 public:
  /// Builds from COO: linearize every nonzero, sort by linearized value,
  /// merge duplicates. `order` selects the bit layout (interleaved by
  /// default; mode-major kept for the ablation bench).
  explicit AltoTensor(const SparseTensor& coo,
                      BitOrder order = BitOrder::kInterleaved);

  const LinearizedEncoding& encoding() const { return encoding_; }
  int num_modes() const { return encoding_.num_modes(); }
  const std::vector<index_t>& dims() const { return encoding_.dims(); }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  const std::vector<lco_t>& linearized() const { return linearized_; }
  const std::vector<real_t>& values() const { return values_; }

  /// Bytes streamed by one full sweep (lco array + values).
  double storage_bytes() const {
    return static_cast<double>(linearized_.size()) * sizeof(lco_t) +
           static_cast<double>(values_.size()) * sizeof(real_t);
  }

 private:
  LinearizedEncoding encoding_;
  std::vector<lco_t> linearized_;
  std::vector<real_t> values_;
};

}  // namespace cstf
