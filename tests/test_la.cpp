// Unit tests for src/la: matrix container, BLAS subset, Cholesky machinery,
// elementwise kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/elementwise.hpp"
#include "la/matrix.hpp"

namespace cstf {
namespace {

using la::Op;

// Reference (obviously correct) triple-loop GEMM for differential testing.
Matrix reference_gemm(Op op_a, Op op_b, real_t alpha, const Matrix& a,
                      const Matrix& b, real_t beta, const Matrix& c0) {
  const index_t m = la::op_rows(a, op_a);
  const index_t n = la::op_cols(b, op_b);
  const index_t k = la::op_cols(a, op_a);
  Matrix c = c0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t acc = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const real_t va = op_a == Op::kNone ? a(i, l) : a(l, i);
        const real_t vb = op_b == Op::kNone ? b(l, j) : b(j, l);
        acc += va * vb;
      }
      c(i, j) = alpha * acc + beta * c0(i, j);
    }
  }
  return c;
}

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.fill_normal(rng);
  return m;
}

Matrix random_spd(index_t n, std::uint64_t seed) {
  // B^T B + n*I is comfortably positive definite.
  Matrix b = random_matrix(2 * n, n, seed);
  Matrix s(n, n);
  la::gram(b, s);
  la::add_diagonal(s, static_cast<real_t>(n));
  return s;
}

TEST(Matrix, ConstructionZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1.0);
  EXPECT_EQ(m.data()[1], 2.0);
  EXPECT_EQ(m.data()[2], 3.0);
  EXPECT_EQ(m.col(1), m.data() + 2);
}

TEST(Matrix, FromRowsAndIdentity) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
  Matrix eye = Matrix::identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(1, 0), 0.0);
  EXPECT_EQ(eye(2, 2), 1.0);
}

TEST(Matrix, ResizeDiscardsAndZeroes) {
  Matrix m(2, 2);
  m.set_all(7.0);
  m.resize(3, 3);
  EXPECT_EQ(m.size(), 9);
  EXPECT_EQ(m(2, 2), 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{1, 2.5}, {3, 4}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

struct GemmCase {
  Op op_a, op_b;
  real_t alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const GemmCase p = GetParam();
  const index_t m = 17, n = 9, k = 13;
  Matrix a = p.op_a == Op::kNone ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  Matrix b = p.op_b == Op::kNone ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  Matrix c = random_matrix(m, n, 3);
  const Matrix want = reference_gemm(p.op_a, p.op_b, p.alpha, a, b, p.beta, c);
  la::gemm(p.op_a, p.op_b, p.alpha, a, b, p.beta, c);
  EXPECT_LT(max_abs_diff(c, want), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GemmSweep,
    ::testing::Values(GemmCase{Op::kNone, Op::kNone, 1.0, 0.0},
                      GemmCase{Op::kNone, Op::kNone, 2.0, 1.0},
                      GemmCase{Op::kNone, Op::kNone, -0.5, 0.25},
                      GemmCase{Op::kTranspose, Op::kNone, 1.0, 0.0},
                      GemmCase{Op::kTranspose, Op::kNone, 1.5, -1.0},
                      GemmCase{Op::kNone, Op::kTranspose, 1.0, 0.0},
                      GemmCase{Op::kNone, Op::kTranspose, -2.0, 0.5},
                      GemmCase{Op::kTranspose, Op::kTranspose, 1.0, 0.0},
                      GemmCase{Op::kTranspose, Op::kTranspose, 0.5, 2.0}));

TEST(Gemm, TallSkinnyShapesUsedByCstf) {
  // The exact shape of the cuADMM GEMM: (I x R) times (R x R).
  const index_t i_len = 503, r = 32;
  Matrix h = random_matrix(i_len, r, 4);
  Matrix inv = random_matrix(r, r, 5);
  Matrix out(i_len, r);
  la::gemm(Op::kNone, Op::kNone, 1.0, h, inv, 0.0, out);
  const Matrix want =
      reference_gemm(Op::kNone, Op::kNone, 1.0, h, inv, 0.0, out);
  EXPECT_LT(max_abs_diff(out, want), 1e-10);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(la::gemm(Op::kNone, Op::kNone, 1.0, a, b, 0.0, c), Error);
}

TEST(Gram, MatchesTransposeGemm) {
  Matrix a = random_matrix(40, 8, 6);
  Matrix s(8, 8), want(8, 8);
  la::gram(a, s);
  la::gemm(Op::kTranspose, Op::kNone, 1.0, a, a, 0.0, want);
  EXPECT_LT(max_abs_diff(s, want), 1e-12);
}

TEST(Gram, ResultIsExactlySymmetric) {
  Matrix a = random_matrix(33, 7, 7);
  Matrix s(7, 7);
  la::gram(a, s);
  for (index_t i = 0; i < 7; ++i) {
    for (index_t j = 0; j < 7; ++j) EXPECT_EQ(s(i, j), s(j, i));
  }
}

TEST(Gemv, NoTransposeAndTranspose) {
  Matrix a = random_matrix(6, 4, 8);
  std::vector<real_t> x{1, -2, 3, 0.5}, y(6, 1.0);
  la::gemv(Op::kNone, 2.0, a, x.data(), 3.0, y.data());
  for (index_t i = 0; i < 6; ++i) {
    real_t want = 3.0;
    for (index_t j = 0; j < 4; ++j) want += 2.0 * a(i, j) * x[j];
    EXPECT_NEAR(y[i], want, 1e-12);
  }
  std::vector<real_t> xt{1, 2, 3, 4, 5, 6}, yt(4, 0.0);
  la::gemv(Op::kTranspose, 1.0, a, xt.data(), 0.0, yt.data());
  for (index_t j = 0; j < 4; ++j) {
    real_t want = 0.0;
    for (index_t i = 0; i < 6; ++i) want += a(i, j) * xt[i];
    EXPECT_NEAR(yt[j], want, 1e-12);
  }
}

TEST(Geam, LinearCombination) {
  Matrix a = random_matrix(11, 5, 9);
  Matrix b = random_matrix(11, 5, 10);
  Matrix c(11, 5);
  la::geam(Op::kNone, Op::kNone, 2.0, a, -1.0, b, c);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i < 11; ++i) {
      EXPECT_NEAR(c(i, j), 2.0 * a(i, j) - b(i, j), 1e-12);
    }
  }
}

TEST(Geam, TransposedOperand) {
  Matrix a = random_matrix(4, 3, 11);
  Matrix b = random_matrix(3, 4, 12);
  Matrix c(4, 3);
  la::geam(Op::kNone, Op::kTranspose, 1.0, a, 1.0, b, c);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(c(i, j), a(i, j) + b(j, i), 1e-12);
    }
  }
}

// Regression: the unfused ADMM dual update writes U = 1.0*U + 1.0*T with the
// output aliasing the first input. The NN path is index-aligned elementwise,
// so aliasing either operand must be exact.
TEST(Geam, OutputMayAliasFirstInputWhenUntransposed) {
  Matrix a = random_matrix(13, 4, 21);
  const Matrix a_orig = a;
  Matrix b = random_matrix(13, 4, 22);
  la::geam(Op::kNone, Op::kNone, 1.0, a, 2.0, b, a);  // c == a
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 13; ++i) {
      EXPECT_DOUBLE_EQ(a(i, j), a_orig(i, j) + 2.0 * b(i, j));
    }
  }
}

TEST(Geam, OutputMayAliasSecondInputWhenUntransposed) {
  Matrix a = random_matrix(7, 6, 23);
  Matrix b = random_matrix(7, 6, 24);
  const Matrix b_orig = b;
  la::geam(Op::kNone, Op::kNone, -1.5, a, 1.0, b, b);  // c == b
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 7; ++i) {
      EXPECT_DOUBLE_EQ(b(i, j), -1.5 * a(i, j) + b_orig(i, j));
    }
  }
}

// Regression: a transposed operand is read at (j,i) while C writes (i,j);
// aliasing used to silently read overwritten elements. It must throw now.
TEST(Geam, AliasingTransposedOperandThrows) {
  Matrix a = random_matrix(5, 5, 25);
  Matrix b = random_matrix(5, 5, 26);
  EXPECT_THROW(la::geam(Op::kTranspose, Op::kNone, 1.0, a, 1.0, b, a), Error);
  EXPECT_THROW(la::geam(Op::kNone, Op::kTranspose, 1.0, a, 1.0, b, b), Error);
  // The untransposed operand may still alias while the other is transposed.
  EXPECT_NO_THROW(la::geam(Op::kNone, Op::kTranspose, 1.0, a, 1.0, b, a));
}

TEST(VectorOps, AxpyScalDotNrm2) {
  std::vector<real_t> x{1, 2, 3}, y{4, 5, 6};
  la::axpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  la::scal(3, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[1], 4.5);
  EXPECT_DOUBLE_EQ(la::dot(3, x.data(), x.data()), 14.0);
  EXPECT_DOUBLE_EQ(la::nrm2(3, x.data()), std::sqrt(14.0));
}

TEST(Norms, FrobeniusMatchesManualSum) {
  Matrix a = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(la::frobenius_norm_sq(a), 25.0);
  EXPECT_DOUBLE_EQ(la::frobenius_norm(a), 5.0);
}

class CholeskyRankSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(CholeskyRankSweep, FactorReconstructsInput) {
  const index_t n = GetParam();
  const Matrix s = random_spd(n, 100 + static_cast<std::uint64_t>(n));
  Matrix l;
  la::cholesky_factor(s, l);
  // L must be lower triangular and L*L^T == S.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(l(i, j), 0.0);
    EXPECT_GT(l(j, j), 0.0);
  }
  Matrix recon(n, n);
  la::gemm(Op::kNone, Op::kTranspose, 1.0, l, l, 0.0, recon);
  EXPECT_LT(max_abs_diff(recon, s), 1e-9 * n);
}

TEST_P(CholeskyRankSweep, SolveInvertsTheSystem) {
  const index_t n = GetParam();
  const Matrix s = random_spd(n, 200 + static_cast<std::uint64_t>(n));
  Matrix l;
  la::cholesky_factor(s, l);
  Matrix x = random_matrix(n, 5, 300 + static_cast<std::uint64_t>(n));
  Matrix b(n, 5);
  la::gemm(Op::kNone, Op::kNone, 1.0, s, x, 0.0, b);
  la::cholesky_solve(l, b);  // b <- S^{-1} (S x) = x
  EXPECT_LT(max_abs_diff(b, x), 1e-8);
}

TEST_P(CholeskyRankSweep, ExplicitInverseTimesSIsIdentity) {
  const index_t n = GetParam();
  const Matrix s = random_spd(n, 400 + static_cast<std::uint64_t>(n));
  Matrix l, inv;
  la::cholesky_factor(s, l);
  la::cholesky_invert(l, inv);
  Matrix prod(n, n);
  la::gemm(Op::kNone, Op::kNone, 1.0, inv, s, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(n)), 1e-8);
  // Inverse must be symmetric (cholesky_invert symmetrizes).
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) EXPECT_EQ(inv(i, j), inv(j, i));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CholeskyRankSweep,
                         ::testing::Values<index_t>(1, 2, 16, 32, 64));

TEST(Cholesky, NonSpdThrows) {
  Matrix s = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  Matrix l;
  EXPECT_THROW(la::cholesky_factor(s, l), Error);
}

TEST(Cholesky, TrsmLowerSolvesForwardSystem) {
  Matrix l = Matrix::from_rows({{2, 0}, {1, 3}});
  Matrix b = Matrix::from_rows({{4}, {11}});
  la::trsm_lower(l, b);
  EXPECT_NEAR(b(0, 0), 2.0, 1e-14);
  EXPECT_NEAR(b(1, 0), 3.0, 1e-14);
}

TEST(Cholesky, TrsmLowerTransposeSolvesBackwardSystem) {
  Matrix l = Matrix::from_rows({{2, 0}, {1, 3}});
  // Solve L^T x = b with b = L^T [1, 2]^T = [4, 6]^T.
  Matrix b = Matrix::from_rows({{4}, {6}});
  la::trsm_lower_transpose(l, b);
  EXPECT_NEAR(b(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(b(1, 0), 2.0, 1e-14);
}

TEST(Cholesky, AddDiagonal) {
  Matrix s = Matrix::from_rows({{1, 2}, {2, 5}});
  la::add_diagonal(s, 0.5);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.5);
  EXPECT_DOUBLE_EQ(s(0, 1), 2.0);
}

TEST(Elementwise, HadamardProduct) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  Matrix c(2, 2);
  la::hadamard(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 32.0);
  la::hadamard_inplace(c, a);
  EXPECT_DOUBLE_EQ(c(1, 1), 128.0);
}

TEST(Elementwise, SafeDivideGuardsZeroDenominator) {
  Matrix a = Matrix::from_rows({{1, 4}});
  Matrix b = Matrix::from_rows({{2, 0}});
  Matrix c(1, 2);
  la::safe_divide(a, b, 1e-16, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.5);
  EXPECT_TRUE(std::isfinite(c(0, 1)));
}

TEST(Elementwise, ClampMinProjectsOntoNonNegativeOrthant) {
  Matrix a = Matrix::from_rows({{-1, 0.5}, {0, -3}});
  la::clamp_min(a, 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.0);
}

TEST(Elementwise, ColumnNormsAndScaling) {
  Matrix a = Matrix::from_rows({{3, 0}, {4, 0}});
  std::vector<real_t> norms(2);
  la::column_norms(a, norms.data());
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
  la::scale_columns_inv(a, norms.data());
  EXPECT_DOUBLE_EQ(a(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.8);
  // Zero column is untouched, its norm reported as 1.
  EXPECT_DOUBLE_EQ(norms[1], 1.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Elementwise, ColumnMaxNorms) {
  Matrix a = Matrix::from_rows({{-3, 1}, {2, -0.5}});
  std::vector<real_t> norms(2);
  la::column_max_norms(a, norms.data());
  EXPECT_DOUBLE_EQ(norms[0], 3.0);
  EXPECT_DOUBLE_EQ(norms[1], 1.0);
}

}  // namespace
}  // namespace cstf
