// Unit tests for src/simgpu/fault: spec parsing, deterministic injection at
// the launch / allocation / host-copy sites, and the Device/ScratchPool
// wiring the trainer and serving recovery paths depend on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "parallel/scratch_pool.hpp"
#include "simgpu/device.hpp"
#include "simgpu/fault.hpp"

namespace cstf {
namespace {

using simgpu::Device;
using simgpu::FaultArm;
using simgpu::FaultError;
using simgpu::FaultPlan;
using simgpu::FaultSite;
using simgpu::KernelStats;

TEST(FaultSpec, ParsesSitesAndKeys) {
  const FaultArm launch = simgpu::parse_fault_arm("launch:k=5");
  EXPECT_EQ(launch.site, FaultSite::kKernelLaunch);
  EXPECT_EQ(launch.k, 5);
  EXPECT_FALSE(launch.fatal);

  const FaultArm alloc = simgpu::parse_fault_arm("alloc:k=1,fatal=1");
  EXPECT_EQ(alloc.site, FaultSite::kAllocation);
  EXPECT_TRUE(alloc.fatal);

  const FaultArm copy =
      simgpu::parse_fault_arm("copy:p=0.25,seed=9,max=3,kernel=stage");
  EXPECT_EQ(copy.site, FaultSite::kHostLinkCopy);
  EXPECT_DOUBLE_EQ(copy.p, 0.25);
  EXPECT_EQ(copy.seed, 9u);
  EXPECT_EQ(copy.max_faults, 3);
  EXPECT_EQ(copy.kernel, "stage");
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(simgpu::parse_fault_arm("bogus:k=1"), Error);   // bad site
  EXPECT_THROW(simgpu::parse_fault_arm("launch"), Error);      // no trigger
  EXPECT_THROW(simgpu::parse_fault_arm("launch:"), Error);
  EXPECT_THROW(simgpu::parse_fault_arm("launch:k=1,p=0.5"), Error);
  EXPECT_THROW(simgpu::parse_fault_arm("launch:p=1.5"), Error);
  EXPECT_THROW(simgpu::parse_fault_arm("launch:k=abc"), Error);
  EXPECT_THROW(simgpu::parse_fault_arm("launch:wat=1"), Error);
}

TEST(FaultPlan, FailsExactlyTheKthLaunch) {
  FaultPlan plan("launch:k=3");
  EXPECT_TRUE(plan.active());
  plan.on_launch("a");
  plan.on_launch("b");
  try {
    plan.on_launch("c");
    FAIL() << "3rd launch should have failed";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.site(), FaultSite::kKernelLaunch);
    EXPECT_TRUE(e.transient());
  }
  // k-arms inject once and then go quiescent.
  plan.on_launch("d");
  plan.on_launch("e");
  EXPECT_EQ(plan.injected(), 1);
  EXPECT_EQ(plan.seen(FaultSite::kKernelLaunch), 5);
}

TEST(FaultPlan, ProbabilisticArmIsDeterministicGivenSeed) {
  const auto run = [](int launches) {
    FaultPlan plan("launch:p=0.3,seed=1234");
    std::vector<int> failed;
    for (int i = 0; i < launches; ++i) {
      try {
        plan.on_launch("k");
      } catch (const FaultError&) {
        failed.push_back(i);
      }
    }
    return failed;
  };
  const std::vector<int> a = run(200);
  const std::vector<int> b = run(200);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);   // p=0.3 over 200 draws: some must fire
  EXPECT_LT(a.size(), 200u); // ... and some must not
}

TEST(FaultPlan, MaxCapsInjections) {
  FaultPlan plan("launch:p=1.0,seed=1,max=2");
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      plan.on_launch("k");
    } catch (const FaultError&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(plan.injected(), 2);
}

TEST(FaultPlan, KernelFilterCountsOnlyMatchingLaunches) {
  FaultPlan plan("launch:k=2,kernel=dgemm");
  plan.on_launch("dsyrk_gram");   // not counted
  plan.on_launch("dgemm_nt");     // match 1
  plan.on_launch("mttkrp_blco");  // not counted
  EXPECT_THROW(plan.on_launch("dgemm_nn"), FaultError);  // match 2
}

TEST(FaultPlan, FatalFaultsAreNotTransient) {
  FaultPlan plan("launch:k=1,fatal=1");
  try {
    plan.on_launch("k");
    FAIL() << "first launch should have failed";
  } catch (const FaultError& e) {
    EXPECT_FALSE(e.transient());
  }
}

TEST(FaultPlan, MultiArmSpecChecksEverySite) {
  FaultPlan plan("launch:k=1;copy:k=1");
  EXPECT_THROW(plan.on_launch("k"), FaultError);
  EXPECT_THROW(plan.on_host_copy("stage", 1024.0), FaultError);
  EXPECT_EQ(plan.injected(), 2);
}

TEST(FaultPlan, FromEnvReadsCstfFaultPlan) {
  ::setenv("CSTF_FAULT_PLAN", "launch:k=1", 1);
  FaultPlan plan = FaultPlan::from_env();
  ::unsetenv("CSTF_FAULT_PLAN");
  EXPECT_TRUE(plan.active());
  EXPECT_THROW(plan.on_launch("k"), FaultError);

  FaultPlan none = FaultPlan::from_env();
  EXPECT_FALSE(none.active());
}

TEST(FaultDevice, RecordChecksLaunchAndCopySites) {
  Device device(simgpu::a100());
  FaultPlan plan("launch:k=2");
  device.set_fault_plan(&plan);

  KernelStats stats;
  stats.flops = 1e6;
  stats.launches = 1;
  device.record("k1", stats, 1e-4);
  EXPECT_THROW(device.record("k2", stats, 1e-4), FaultError);

  // The failed launch must not have landed in the accounting: a retry
  // re-issues it cleanly, so exactly 2 successful launches are recorded.
  device.record("k3", stats, 1e-4);
  EXPECT_EQ(device.total().launches, 2);

  // Copies are a separate site keyed by host_link_bytes > 0.
  FaultPlan copies("copy:k=1");
  device.set_fault_plan(&copies);
  device.record("k4", stats, 1e-4);  // no host traffic: not a copy event
  KernelStats copy_stats;
  copy_stats.host_link_bytes = 4096.0;
  EXPECT_THROW(device.record("h2d", copy_stats, 1e-4), FaultError);
}

TEST(FaultScratchPool, ScopedAllocFaultsInjectsIntoAcquire) {
  FaultPlan plan("alloc:k=1");
  {
    simgpu::ScopedAllocFaults guard(plan);
    EXPECT_THROW(ScratchPool::global().acquire(2, 64), FaultError);
    // The pool was untouched by the failed acquire; the next one succeeds.
    ScratchPool::Lease lease = ScratchPool::global().acquire(2, 64);
    EXPECT_NE(lease.tile(0), nullptr);
  }
  // Detached: no further injection.
  ScratchPool::Lease lease = ScratchPool::global().acquire(2, 64);
  EXPECT_NE(lease.tile(1), nullptr);
  EXPECT_EQ(plan.injected(), 1);
}

}  // namespace
}  // namespace cstf
