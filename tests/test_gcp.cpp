// Tests for the Poisson (KL) NTF solver and the sampled fit estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "cstf/metrics.hpp"
#include "cstf/sampled_fit.hpp"
#include "gcp/poisson_ntf.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

// Counts sampled from a planted non-negative low-rank rate tensor, fully
// observed (zero counts dropped — they carry no KL log term, and the model
// mass accounts for them).
struct CountData {
  SparseTensor counts;
  std::vector<Matrix> rate_factors;
};

CountData make_count_data(std::vector<index_t> dims, index_t rank,
                          std::uint64_t seed, double rate_scale = 10.0) {
  Rng rng(seed);
  CountData data;
  for (index_t dim : dims) {
    Matrix f(dim, rank);
    f.fill_uniform(rng, 0.1, 1.0);
    data.rate_factors.push_back(std::move(f));
  }
  SparseTensor counts(dims);
  const int modes = static_cast<int>(dims.size());
  index_t coords[kMaxModes];
  double cells = 1.0;
  for (index_t d : dims) cells *= static_cast<double>(d);
  for (index_t lin = 0; lin < static_cast<index_t>(cells); ++lin) {
    index_t rem = lin;
    for (int m = 0; m < modes; ++m) {
      coords[m] = rem % dims[static_cast<std::size_t>(m)];
      rem /= dims[static_cast<std::size_t>(m)];
    }
    real_t rate = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      real_t prod = rate_scale;
      for (int m = 0; m < modes; ++m) {
        prod *= data.rate_factors[static_cast<std::size_t>(m)](coords[m], r);
      }
      rate += prod;
    }
    const auto count = static_cast<real_t>(rng.poisson(rate));
    if (count > 0.0) counts.append(coords, count);
  }
  counts.sort_by_mode(0);
  data.counts = std::move(counts);
  return data;
}

TEST(RngPoisson, MeanAndVarianceMatchRate) {
  Rng rng(1);
  for (double rate : {0.5, 4.0, 50.0}) {
    double sum = 0.0, sum_sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double x = static_cast<double>(rng.poisson(rate));
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, rate, 0.1 * rate + 0.05) << "rate " << rate;
    EXPECT_NEAR(var, rate, 0.2 * rate + 0.1) << "rate " << rate;
  }
}

TEST(RngPoisson, ZeroRateAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(PoissonNtf, ObjectiveDecreasesMonotonically) {
  const CountData data = make_count_data({15, 12, 10}, 3, 3);
  PoissonNtfOptions opt;
  opt.rank = 4;
  opt.max_iterations = 15;
  PoissonNtf solver(data.counts, opt);
  const PoissonNtfResult result = solver.run();
  ASSERT_GE(result.objective_history.size(), 2u);
  for (std::size_t i = 1; i < result.objective_history.size(); ++i) {
    EXPECT_LE(result.objective_history[i],
              result.objective_history[i - 1] + 1e-6)
        << "iteration " << i;
  }
}

TEST(PoissonNtf, FactorsStayNonNegative) {
  const CountData data = make_count_data({12, 10, 8}, 2, 4);
  PoissonNtfOptions opt;
  opt.rank = 3;
  opt.max_iterations = 10;
  PoissonNtf solver(data.counts, opt);
  solver.run();
  for (const Matrix& f : solver.factors()) {
    for (index_t i = 0; i < f.size(); ++i) EXPECT_GE(f.data()[i], 0.0);
  }
}

TEST(PoissonNtf, RecoversPlantedRateStructure) {
  const CountData data = make_count_data({20, 16, 12}, 2, 5, 20.0);
  PoissonNtfOptions opt;
  opt.rank = 2;
  opt.max_iterations = 120;
  opt.tolerance = 1e-9;
  PoissonNtf solver(data.counts, opt);
  solver.run();
  KTensor truth;
  truth.factors = data.rate_factors;
  truth.lambda.assign(2, 1.0);
  // Congruence only (scale lives arbitrarily in the Poisson magnitudes):
  // each recovered component matches some planted component directionally.
  const KTensor got = solver.ktensor();
  for (index_t r = 0; r < 2; ++r) {
    double best = 0.0;
    for (index_t s = 0; s < 2; ++s) {
      best = std::max(best, component_congruence(got, r, truth, s));
    }
    EXPECT_GT(best, 0.9) << "component " << r;
  }
}

TEST(PoissonNtf, RejectsNegativeCounts) {
  SparseTensor t({3, 3});
  t.append({0, 0}, -1.0);
  PoissonNtfOptions opt;
  EXPECT_THROW(PoissonNtf(t, opt), Error);
}

TEST(PoissonNtf, RejectsNonPositiveEpsilon) {
  SparseTensor t({3, 3});
  t.append({0, 0}, 1.0);
  PoissonNtfOptions zero;
  zero.epsilon = 0.0;  // would reintroduce log(0) / division by zero
  EXPECT_THROW(PoissonNtf(t, zero), Error);
  PoissonNtfOptions negative;
  negative.epsilon = -1e-12;
  EXPECT_THROW(PoissonNtf(t, negative), Error);
}

TEST(PoissonNtf, SetFactorsValidatesShapesAndSign) {
  SparseTensor t({2, 3});
  t.append({0, 0}, 1.0);
  PoissonNtfOptions opt;
  opt.rank = 2;
  PoissonNtf solver(t, opt);

  std::vector<Matrix> wrong_count;
  wrong_count.emplace_back(2, 2);
  EXPECT_THROW(solver.set_factors(std::move(wrong_count)), Error);

  std::vector<Matrix> wrong_shape;
  wrong_shape.emplace_back(2, 2);
  wrong_shape.emplace_back(3, 1);  // rank mismatch
  EXPECT_THROW(solver.set_factors(std::move(wrong_shape)), Error);

  std::vector<Matrix> negative;
  negative.emplace_back(2, 2);
  negative.emplace_back(3, 2);
  negative[0](1, 1) = -0.5;
  EXPECT_THROW(solver.set_factors(std::move(negative)), Error);
}

TEST(PoissonNtf, LossFloorGivesFiniteObjectiveOnZeroModelCell) {
  // One observed count x = 2 at (0,0,0) over a rank-1 model that is EXACTLY
  // zero there: without the floor the log term would be -inf. Hand-computed
  // boundary value:
  //   mass      = colsum(f0) * colsum(f1) * colsum(f2) = 0.5 * 0.25 * 0.125
  //   log term  = x * log(max(0, eps)) = 2 * log(1e-12)
  //   objective = mass - log term
  SparseTensor t({2, 2, 2});
  t.append({0, 0, 0}, 2.0);
  PoissonNtfOptions opt;
  opt.rank = 1;
  opt.epsilon = 1e-12;
  PoissonNtf solver(t, opt);

  Matrix f0(2, 1), f1(2, 1), f2(2, 1);
  f0(0, 0) = 0.0;   f0(1, 0) = 0.5;    // zero row at the observed index
  f1(0, 0) = 0.25;  f1(1, 0) = 0.0;
  f2(0, 0) = 0.125; f2(1, 0) = 0.0;
  std::vector<Matrix> factors;
  factors.push_back(std::move(f0));
  factors.push_back(std::move(f1));
  factors.push_back(std::move(f2));
  solver.set_factors(std::move(factors));

  const real_t expected =
      0.5 * 0.25 * 0.125 - 2.0 * std::log(real_t{1e-12});
  const real_t objective = solver.objective();
  EXPECT_TRUE(std::isfinite(objective));
  EXPECT_NEAR(objective, expected, 1e-9);

  // A larger floor changes exactly the log term: the floor IS the bound.
  PoissonNtfOptions coarse = opt;
  coarse.epsilon = 1e-6;
  PoissonNtf coarse_solver(t, coarse);
  Matrix g0(2, 1), g1(2, 1), g2(2, 1);
  g0(0, 0) = 0.0;   g0(1, 0) = 0.5;
  g1(0, 0) = 0.25;  g1(1, 0) = 0.0;
  g2(0, 0) = 0.125; g2(1, 0) = 0.0;
  std::vector<Matrix> same;
  same.push_back(std::move(g0));
  same.push_back(std::move(g1));
  same.push_back(std::move(g2));
  coarse_solver.set_factors(std::move(same));
  EXPECT_NEAR(coarse_solver.objective(),
              0.5 * 0.25 * 0.125 - 2.0 * std::log(real_t{1e-6}), 1e-9);
}

TEST(PoissonNtf, ConvergesWithToleranceEarlyExit) {
  const CountData data = make_count_data({10, 8, 6}, 2, 6);
  PoissonNtfOptions opt;
  opt.rank = 3;
  opt.max_iterations = 200;
  // KL-MU has a sublinear tail; a practical stopping tolerance is coarse.
  opt.tolerance = 1e-3;
  PoissonNtf solver(data.counts, opt);
  const PoissonNtfResult result = solver.run();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 200);
}

TEST(SampledFit, ExactWhenSampleCoversAllNonzeros) {
  LowRankTensorParams gen;
  gen.dims = {15, 12, 9};
  gen.rank = 3;
  gen.target_nnz = 15 * 12 * 9;
  gen.noise = 0.02;
  gen.seed = 7;
  const LowRankTensor lr = generate_low_rank(gen);
  KTensor model;
  model.factors = lr.factors;
  model.lambda.assign(3, 1.0);
  SampledFitOptions opt;
  opt.sample_size = lr.tensor.nnz();
  EXPECT_NEAR(sampled_fit(model, lr.tensor, opt), model.fit_to(lr.tensor),
              1e-12);
}

TEST(SampledFit, EstimateCloseToExactWithModestSample) {
  LowRankTensorParams gen;
  gen.dims = {30, 25, 20};
  gen.rank = 4;
  gen.target_nnz = 30 * 25 * 20;
  gen.noise = 0.05;
  gen.seed = 8;
  const LowRankTensor lr = generate_low_rank(gen);
  KTensor model;
  model.factors = lr.factors;
  model.lambda.assign(4, 1.0);
  const real_t exact = model.fit_to(lr.tensor);
  SampledFitOptions opt;
  opt.sample_size = 5000;  // a third of the nonzeros
  opt.seed = 12;
  EXPECT_NEAR(sampled_fit(model, lr.tensor, opt), exact, 0.06);
}

TEST(SampledFit, DeterministicForFixedSeed) {
  LowRankTensorParams gen;
  gen.dims = {20, 15, 10};
  gen.rank = 2;
  gen.target_nnz = 20 * 15 * 10;
  gen.seed = 10;
  const LowRankTensor lr = generate_low_rank(gen);
  KTensor model;
  model.factors = lr.factors;
  model.lambda.assign(2, 1.0);
  SampledFitOptions opt;
  opt.sample_size = 500;
  opt.seed = 11;
  EXPECT_DOUBLE_EQ(sampled_fit(model, lr.tensor, opt),
                   sampled_fit(model, lr.tensor, opt));
}

}  // namespace
}  // namespace cstf
