// Unit tests for the CPU/GPU placement decision model.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "scheduler/placement.hpp"

namespace cstf {
namespace {

using scheduler::PhaseCost;
using scheduler::PlacementPlan;
using scheduler::Target;

simgpu::DeviceSpec gpu_with_link(double bandwidth, double latency = 0.0) {
  simgpu::DeviceSpec spec = simgpu::a100();
  spec.host_link_bandwidth = bandwidth;
  spec.host_link_latency = latency;
  return spec;
}

TEST(TransferTime, ZeroForHostDevices) {
  EXPECT_DOUBLE_EQ(simgpu::transfer_time(simgpu::xeon_8367hc(), 1e9), 0.0);
}

TEST(TransferTime, LatencyPlusBandwidth) {
  const auto gpu = gpu_with_link(10e9, 1e-5);
  EXPECT_DOUBLE_EQ(simgpu::transfer_time(gpu, 1e9), 1e-5 + 0.1);
}

TEST(Placement, EmptyChainYieldsEmptyPlan) {
  const PlacementPlan plan =
      scheduler::choose_placement({}, gpu_with_link(10e9));
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_DOUBLE_EQ(plan.total_seconds, 0.0);
}

TEST(Placement, AllGpuWhenGpuWinsEveryPhase) {
  std::vector<PhaseCost> phases = {
      {"a", 1.0, 0.1, 1e6}, {"b", 2.0, 0.2, 1e6}, {"c", 1.5, 0.1, 1e6}};
  const PlacementPlan plan =
      scheduler::choose_placement(phases, gpu_with_link(100e9));
  EXPECT_TRUE(plan.all_on(Target::kGpu));
  EXPECT_FALSE(plan.hybrid());
  EXPECT_NEAR(plan.total_seconds, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(plan.transfer_seconds, 0.0);
}

TEST(Placement, AllCpuWhenCpuWinsEveryPhase) {
  std::vector<PhaseCost> phases = {{"a", 0.1, 1.0, 1e6},
                                   {"b", 0.2, 2.0, 1e6}};
  const PlacementPlan plan =
      scheduler::choose_placement(phases, gpu_with_link(100e9));
  EXPECT_TRUE(plan.all_on(Target::kCpu));
  EXPECT_NEAR(plan.total_seconds, 0.3, 1e-12);
}

TEST(Placement, SwitchesWhenSavingsExceedTransfer) {
  // Phase b is 1s faster on the CPU; crossing back and forth costs
  // 2 x 0.1s = 0.2s at 10 GB/s with 1 GB boundaries -> switching wins.
  std::vector<PhaseCost> phases = {{"a", 10.0, 0.1, 1e9},
                                   {"b", 0.1, 1.1, 1e9},
                                   {"c", 10.0, 0.1, 1e9}};
  const PlacementPlan plan =
      scheduler::choose_placement(phases, gpu_with_link(10e9));
  EXPECT_TRUE(plan.hybrid());
  EXPECT_EQ(plan.steps[0].target, Target::kGpu);
  EXPECT_EQ(plan.steps[1].target, Target::kCpu);
  EXPECT_EQ(plan.steps[2].target, Target::kGpu);
  EXPECT_NEAR(plan.transfer_seconds, 0.2, 1e-9);
}

TEST(Placement, StaysPutWhenTransferTooExpensive) {
  // Same chain but a 100x slower link: the 1s saving costs 20s of transfer.
  std::vector<PhaseCost> phases = {{"a", 10.0, 0.1, 1e9},
                                   {"b", 0.1, 1.1, 1e9},
                                   {"c", 10.0, 0.1, 1e9}};
  const PlacementPlan plan =
      scheduler::choose_placement(phases, gpu_with_link(0.1e9));
  EXPECT_TRUE(plan.all_on(Target::kGpu));
}

TEST(Placement, InitialUploadChargedForGpuStart) {
  // One phase, marginally faster on GPU, but the initial upload tips it.
  std::vector<PhaseCost> phases = {{"a", 1.0, 0.95, 0.0}};
  const auto gpu = gpu_with_link(1e9);
  const PlacementPlan cheap_upload =
      scheduler::choose_placement(phases, gpu, /*initial_bytes=*/0.0);
  EXPECT_TRUE(cheap_upload.all_on(Target::kGpu));
  const PlacementPlan costly_upload =
      scheduler::choose_placement(phases, gpu, /*initial_bytes=*/1e9);
  EXPECT_TRUE(costly_upload.all_on(Target::kCpu));
}

TEST(Placement, FinalDownloadChargedForGpuEnd) {
  std::vector<PhaseCost> phases = {{"a", 1.0, 0.95, 0.0}};
  const auto gpu = gpu_with_link(1e9);
  const PlacementPlan plan = scheduler::choose_placement(
      phases, gpu, /*initial_bytes=*/0.0, /*final_bytes=*/1e9);
  EXPECT_TRUE(plan.all_on(Target::kCpu));
}

TEST(Placement, NeverWorseThanEitherPurePlacement) {
  // Property over random-ish chains: the DP optimum is bounded above by
  // both pure plans.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PhaseCost> phases;
    double pure_cpu = 0.0, pure_gpu = 0.0;
    const int n = 2 + static_cast<int>(rng.uniform_index(8));
    for (int i = 0; i < n; ++i) {
      PhaseCost p;
      p.name = "p" + std::to_string(i);
      p.cpu_seconds = rng.uniform(0.01, 2.0);
      p.gpu_seconds = rng.uniform(0.01, 2.0);
      p.boundary_bytes = rng.uniform(0.0, 2e9);
      pure_cpu += p.cpu_seconds;
      pure_gpu += p.gpu_seconds;
      phases.push_back(std::move(p));
    }
    const PlacementPlan plan =
        scheduler::choose_placement(phases, gpu_with_link(10e9, 1e-5));
    EXPECT_LE(plan.total_seconds, pure_cpu + 1e-9);
    EXPECT_LE(plan.total_seconds, pure_gpu + 1e-9);
  }
}

TEST(Placement, TargetNames) {
  EXPECT_STREQ(scheduler::target_name(Target::kCpu), "CPU");
  EXPECT_STREQ(scheduler::target_name(Target::kGpu), "GPU");
}

}  // namespace
}  // namespace cstf
