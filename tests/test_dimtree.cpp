// Dimension-tree MTTKRP engine tests: bit-identity against the sequential
// reference across orders/ranks/modes (the property DESIGN.md §13 builds
// on), chain staleness handling, the budget-cap flat fallback, and the
// tree-vs-flat cost-model resolution.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "formats/blco.hpp"
#include "la/matrix.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/dimtree.hpp"
#include "perfmodel/admm_model.hpp"
#include "simgpu/device.hpp"
#include "simgpu/device_spec.hpp"
#include "tensor/datasets.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor random_tensor(std::vector<index_t> dims, index_t nnz,
                           std::uint64_t seed) {
  RandomTensorParams params;
  params.dims = std::move(dims);
  params.target_nnz = nnz;
  params.seed = seed;
  return generate_random(params);
}

std::vector<Matrix> random_factors(const SparseTensor& t, index_t rank,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    Matrix f(t.dim(m), rank);
    f.fill_uniform(rng, 0.1, 1.0);
    factors.push_back(std::move(f));
  }
  return factors;
}

// Bitwise equality — the dimtree guarantee under deterministic scatter is
// exact reproduction of mttkrp_ref, not just small error.
::testing::AssertionResult bit_identical(const Matrix& got,
                                         const Matrix& want) {
  if (got.rows() != want.rows() || got.cols() != want.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(got.data(), want.data(),
                  static_cast<std::size_t>(got.size()) * sizeof(real_t)) !=
      0) {
    return ::testing::AssertionFailure()
           << "outputs differ bitwise (max abs diff "
           << max_abs_diff(got, want) << ")";
  }
  return ::testing::AssertionSuccess();
}

ScatterOptions deterministic_opts() {
  ScatterOptions opts;
  opts.deterministic = true;
  return opts;
}

// Unequal per-mode sizes so a stale-workspace or wrong-mode bug cannot hide
// behind symmetric shapes.
std::vector<index_t> unequal_dims(int modes) {
  const index_t base[5] = {37, 11, 53, 7, 23};
  std::vector<index_t> dims;
  for (int m = 0; m < modes; ++m) dims.push_back(base[m]);
  return dims;
}

// (num_modes, rank) sweep: orders 3-5, ranks {1, 8, 17}.
class DimtreeSweep
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {};

TEST_P(DimtreeSweep, BitIdenticalToReferenceOnEveryMode) {
  const auto [modes, rank] = GetParam();
  const SparseTensor t = random_tensor(unequal_dims(modes), 1700, 41);
  const auto factors = random_factors(t, rank, 51);
  DimTreeEngine engine(t, rank);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < modes; ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    const ScatterStrategy used =
        engine.mttkrp(dev, factors, mode, got, deterministic_opts());
    EXPECT_EQ(used, ScatterStrategy::kSorted) << "mode " << mode;
    EXPECT_TRUE(bit_identical(got, want)) << "mode " << mode;
  }
  // Modes 1..N-1 derived from the chain; the prefix is fully folded now.
  EXPECT_EQ(engine.level(), modes - 1);
}

TEST_P(DimtreeSweep, AoSweepWithFactorUpdatesStaysBitIdentical) {
  const auto [modes, rank] = GetParam();
  const SparseTensor t = random_tensor(unequal_dims(modes), 1300, 43);
  auto factors = random_factors(t, rank, 53);
  DimTreeEngine engine(t, rank);
  simgpu::Device dev(simgpu::a100());
  Rng rng(77);
  // Two AO outer sweeps: derive mode n, then overwrite factor n with new
  // values (the update step) and tell the engine — exactly the trainer's
  // call pattern, including the second sweep's chain rebuild.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int mode = 0; mode < modes; ++mode) {
      Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
      mttkrp_ref(t, factors, mode, want);
      engine.mttkrp(dev, factors, mode, got, deterministic_opts());
      EXPECT_TRUE(bit_identical(got, want))
          << "sweep " << sweep << " mode " << mode;
      factors[static_cast<std::size_t>(mode)].fill_uniform(rng, 0.1, 1.0);
      engine.note_factor_updated(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndRanks, DimtreeSweep,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values<index_t>(1, 8, 17)));

TEST(DimtreeInvalidation, FingerprintCatchesSilentFactorMutation) {
  const SparseTensor t = random_tensor({19, 23, 17, 13}, 900, 61);
  auto factors = random_factors(t, 8, 62);
  DimTreeEngine engine(t, 8);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(2), 8), want(t.dim(2), 8);
  engine.mttkrp(dev, factors, 2, out, deterministic_opts());
  ASSERT_EQ(engine.level(), 2);  // factors 0 and 1 folded

  // Mutate a folded factor in place without note_factor_updated — the
  // fingerprint backstop must drop the chain on the next derive. Entry
  // (0, 0) is always covered by the sampled hash.
  factors[0](0, 0) += 1.0;
  mttkrp_ref(t, factors, 2, want);
  engine.mttkrp(dev, factors, 2, out, deterministic_opts());
  EXPECT_TRUE(bit_identical(out, want));
  ASSERT_EQ(engine.level(), 2);

  // Now mutate a *non-zero* folded level. The in-place chain holds only
  // P_2, so a stale level 1 must force a full rebuild — truncating to
  // level 1 and re-folding factor 1 into P_2 would silently double-count
  // the old contents.
  factors[1](0, 0) += 1.0;
  mttkrp_ref(t, factors, 2, want);
  engine.mttkrp(dev, factors, 2, out, deterministic_opts());
  EXPECT_TRUE(bit_identical(out, want));
}

TEST(DimtreeInvalidation, NoteFactorUpdatedOnFoldedLevelDropsWholeChain) {
  const SparseTensor t = random_tensor({19, 23, 17, 13}, 900, 63);
  auto factors = random_factors(t, 4, 64);
  DimTreeEngine engine(t, 4);
  simgpu::Device dev(simgpu::a100());
  engine.extend_to(dev, factors, 3);
  ASSERT_EQ(engine.level(), 3);
  // The buffer holds only P_3; a stale factor 2 cannot be peeled off, so
  // the whole chain goes.
  engine.note_factor_updated(2);
  EXPECT_EQ(engine.level(), 0);
  engine.note_factor_updated(2);  // idempotent
  EXPECT_EQ(engine.level(), 0);

  // An update to a not-yet-folded factor is free (the trainer's in-order
  // sweep: level() == mode at update time).
  engine.extend_to(dev, factors, 2);
  ASSERT_EQ(engine.level(), 2);
  engine.note_factor_updated(2);
  EXPECT_EQ(engine.level(), 2);
  engine.note_factor_updated(3);
  EXPECT_EQ(engine.level(), 2);
  engine.invalidate();
  EXPECT_EQ(engine.level(), 0);
}

TEST(DimtreeInvalidation, MidPrefixUpdateThenExtendStaysBitIdentical) {
  // Regression: chain at P_2 = v ⊙ H0 ⊙ H1, then factor 1 is updated and
  // announced. A truncate-to-1 implementation would next fold the new H1
  // into a buffer still holding P_2, yielding v ⊙ H0 ⊙ H1_old ⊙ H1_new.
  const SparseTensor t = random_tensor({19, 23, 17, 13}, 900, 67);
  auto factors = random_factors(t, 8, 68);
  DimTreeEngine engine(t, 8);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(2), 8), want(t.dim(2), 8);
  engine.mttkrp(dev, factors, 2, out, deterministic_opts());
  ASSERT_EQ(engine.level(), 2);

  Rng rng(69);
  factors[1].fill_uniform(rng, 0.1, 1.0);
  engine.note_factor_updated(1);
  EXPECT_EQ(engine.level(), 0);
  for (int mode = 2; mode < t.num_modes(); ++mode) {
    Matrix w(t.dim(mode), 8), g(t.dim(mode), 8);
    mttkrp_ref(t, factors, mode, w);
    engine.mttkrp(dev, factors, mode, g, deterministic_opts());
    EXPECT_TRUE(bit_identical(g, w)) << "mode " << mode;
  }
}

TEST(DimtreeInvalidation, ExtendBelowCurrentLevelRebuilds) {
  const SparseTensor t = random_tensor({19, 23, 17}, 700, 65);
  const auto factors = random_factors(t, 4, 66);
  DimTreeEngine engine(t, 4);
  simgpu::Device dev(simgpu::a100());
  engine.extend_to(dev, factors, 2);
  ASSERT_EQ(engine.level(), 2);
  engine.extend_to(dev, factors, 1);  // cannot unfold: rebuilds prefix
  EXPECT_EQ(engine.level(), 1);
  Matrix want(t.dim(1), 4), got(t.dim(1), 4);
  mttkrp_ref(t, factors, 1, want);
  engine.mttkrp(dev, factors, 1, got, deterministic_opts());
  EXPECT_TRUE(bit_identical(got, want));
}

TEST(DimtreeBudget, CapFallsBackToFlatMidIteration) {
  const SparseTensor t = random_tensor({29, 31, 23, 19}, 1100, 71);
  const auto factors = random_factors(t, 8, 72);
  DimTreeEngine engine(t, 8);
  simgpu::Device dev(simgpu::a100());
  Matrix want(t.dim(1), 8), got(t.dim(1), 8);

  engine.mttkrp(dev, factors, 1, got, deterministic_opts());
  ASSERT_TRUE(engine.chain_fits());
  ASSERT_EQ(engine.level(), 1);

  // The cap drops below the chain mid-iteration: the chain is released and
  // the remaining modes run flat, with identical results.
  engine.set_budget_bytes(engine.chain_bytes() - 1.0);
  EXPECT_FALSE(engine.chain_fits());
  EXPECT_EQ(engine.level(), 0);
  for (int mode = 1; mode < t.num_modes(); ++mode) {
    Matrix w(t.dim(mode), 8), g(t.dim(mode), 8);
    mttkrp_ref(t, factors, mode, w);
    engine.mttkrp(dev, factors, mode, g, deterministic_opts());
    EXPECT_TRUE(bit_identical(g, w)) << "mode " << mode;
    EXPECT_EQ(engine.level(), 0) << "mode " << mode;
  }

  // Raising the budget restores reuse.
  engine.set_budget_bytes(2.0 * engine.chain_bytes());
  mttkrp_ref(t, factors, 1, want);
  engine.mttkrp(dev, factors, 1, got, deterministic_opts());
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_EQ(engine.level(), 1);
}

TEST(DimtreeResolve, BudgetCapForcesFlat) {
  const SparseTensor t = random_tensor({29, 31, 23}, 1000, 73);
  EXPECT_EQ(resolve_mttkrp_mode(t, 8, ScatterOptions{}, simgpu::a100(),
                                /*budget_bytes=*/1.0),
            MttkrpMode::kFlat);
}

TEST(DimtreeResolve, FullScaleDecisionSeparatesCacheResidentFromLarge) {
  // At full dataset scale the 4-way long-mode tensors favor the tree (the
  // suffix derives shrink the random-traffic working set), while NIPS/Uber's
  // factors are cache-resident on the A100 — random traffic is nearly free
  // and the chain streaming only adds cost. The resolver must see both.
  const ScatterOptions opts;
  const auto spec = simgpu::a100();
  const index_t rank = 32;
  const auto decide = [&](const char* name) {
    const DatasetAnalog data = make_analog(name);
    const BlcoTensor blco(data.tensor);
    return resolve_mttkrp_mode(data.tensor, rank, opts, spec,
                               kDefaultDimtreeBudgetBytes,
                               blco.storage_bytes(), data.nnz_scale());
  };
  EXPECT_EQ(decide("NIPS"), MttkrpMode::kFlat);
  EXPECT_EQ(decide("Uber"), MttkrpMode::kFlat);
  EXPECT_EQ(decide("Chicago"), MttkrpMode::kDimtree);
  EXPECT_EQ(decide("Flickr"), MttkrpMode::kDimtree);
  EXPECT_EQ(decide("Delicious"), MttkrpMode::kDimtree);
}

TEST(DimtreeStats, ReuseFactorAndDescribe) {
  const SparseTensor t = random_tensor({29, 31, 23, 19}, 1100, 75);
  DimTreeEngine engine(t, 8);
  // Order 4: flat = N(N+1) = 20 rank-multiplies per nonzero; tree = mode-0
  // flat (5) + extends (2 + 1 + 1) + derives (3 + 2 + 1) = 15.
  EXPECT_GT(engine.reuse_factor(), 1.3);
  EXPECT_NEAR(engine.flat_iteration_flops() / engine.tree_iteration_flops(),
              20.0 / 15.0, 1e-12);
  const std::string desc = describe_dimtree(engine);
  EXPECT_NE(desc.find("node P1"), std::string::npos);
  EXPECT_NE(desc.find("reuse factor"), std::string::npos);
  EXPECT_NE(desc.find("within"), std::string::npos);
}

TEST(DimtreeStats, TreeSequenceModelsFasterOnTreeFavorableShape) {
  // Chicago-like: 4-way, one long mode, large enough that factors spill the
  // cache at full scale — the configuration the acceptance gate measures.
  const DatasetAnalog data = make_analog("Chicago");
  const BlcoTensor blco(data.tensor);
  DimTreeEngine engine(data.tensor, 32);
  engine.set_flat_stream_bytes(blco.storage_bytes());
  const ScatterOptions opts;
  const double flat_s = perfmodel::modeled_sequence_scaled(
      engine.flat_iteration_stats(opts), data.nnz_scale(), simgpu::a100());
  const double tree_s = perfmodel::modeled_sequence_scaled(
      engine.tree_iteration_stats(opts), data.nnz_scale(), simgpu::a100());
  EXPECT_GT(flat_s / tree_s, 1.3);
}

}  // namespace
}  // namespace cstf
