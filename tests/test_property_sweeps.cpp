// Randomized differential property sweeps across the whole stack: for many
// seeds and shapes, every format must reconstruct the same tensor, every
// MTTKRP kernel must agree, and a full factorization run must satisfy its
// invariants (feasibility, normalization, fit bounds, determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "cstf/framework.hpp"
#include "la/blas.hpp"
#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "mttkrp/alto_mttkrp.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/csf_mttkrp.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

// Derives a pseudo-random but deterministic shape from the seed.
SparseTensor tensor_for_seed(std::uint64_t seed) {
  Rng shape_rng(seed * 7919);
  const int modes = 2 + static_cast<int>(shape_rng.uniform_index(3));
  RandomTensorParams params;
  for (int m = 0; m < modes; ++m) {
    params.dims.push_back(
        5 + static_cast<index_t>(shape_rng.uniform_index(120)));
  }
  params.target_nnz = 200 + static_cast<index_t>(shape_rng.uniform_index(3000));
  params.mode_dist.assign(static_cast<std::size_t>(modes),
                          ModeDistribution{shape_rng.uniform(0.0, 1.4)});
  params.seed = seed;
  return generate_random(params);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AllFormatsPreserveTheTensor) {
  const SparseTensor t = tensor_for_seed(GetParam());
  std::map<std::vector<index_t>, real_t> want;
  for (index_t i = 0; i < t.nnz(); ++i) {
    std::vector<index_t> key;
    for (int m = 0; m < t.num_modes(); ++m) {
      key.push_back(t.indices(m)[static_cast<std::size_t>(i)]);
    }
    want[key] += t.values()[static_cast<std::size_t>(i)];
  }

  const AltoTensor alto(t);
  ASSERT_EQ(static_cast<std::size_t>(alto.nnz()), want.size());
  real_t alto_sum = 0.0;
  for (real_t v : alto.values()) alto_sum += v;

  const BlcoTensor blco(t, 512);
  ASSERT_EQ(blco.nnz(), alto.nnz());
  index_t coords[kMaxModes];
  real_t blco_sum = 0.0;
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    const BlcoBlock& blk = blco.block(b);
    for (index_t i = 0; i < blk.count; ++i) {
      blco.encoding().decode_all(blco.element_lco(blk, i), coords);
      std::vector<index_t> key(coords, coords + t.num_modes());
      auto it = want.find(key);
      ASSERT_NE(it, want.end());
      EXPECT_DOUBLE_EQ(
          it->second,
          blco.values()[static_cast<std::size_t>(blk.value_offset + i)]);
      blco_sum += blco.values()[static_cast<std::size_t>(blk.value_offset + i)];
    }
  }
  EXPECT_NEAR(alto_sum, blco_sum, 1e-9 * std::abs(alto_sum));

  const CsfTensor csf(t, t.num_modes() - 1);
  EXPECT_EQ(csf.nnz(), alto.nnz());
}

TEST_P(SeedSweep, EveryMttkrpKernelAgreesOnEveryMode) {
  const SparseTensor t = tensor_for_seed(GetParam());
  Rng rng(GetParam() + 1);
  const index_t rank = 4 + static_cast<index_t>(rng.uniform_index(13));
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    Matrix f(t.dim(m), rank);
    f.fill_normal(rng);  // signed values exercise cancellation too
    factors.push_back(std::move(f));
  }
  const AltoTensor alto(t);
  const BlcoTensor blco(t, 1024);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    Matrix got(t.dim(mode), rank);
    mttkrp_coo(t, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "coo mode " << mode;
    CsfTensor csf(t, mode);
    mttkrp_csf(csf, factors, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "csf mode " << mode;
    mttkrp_alto(alto, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "alto mode " << mode;
    mttkrp_blco(dev, blco, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "blco mode " << mode;
    mttkrp_blco_streamed(dev, blco, factors, mode, got,
                         blco.storage_bytes() / 3.0);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "streamed mode " << mode;
  }
}

TEST_P(SeedSweep, FactorizationInvariantsHold) {
  const SparseTensor t = tensor_for_seed(GetParam());
  FrameworkOptions opt;
  opt.rank = 4;
  opt.max_iterations = 3;
  opt.seed = GetParam();
  CstfFramework framework(t, opt);
  const AuntfResult result = framework.run();

  // Fit is bounded above by 1 and is finite.
  EXPECT_TRUE(std::isfinite(result.final_fit));
  EXPECT_LE(result.final_fit, 1.0 + 1e-9);

  const KTensor model = framework.ktensor();
  for (const Matrix& f : model.factors) {
    EXPECT_TRUE(Proximity::non_negative().is_feasible(f, 1e-9));
    for (index_t j = 0; j < f.cols(); ++j) {
      const real_t norm = la::nrm2(f.rows(), f.col(j));
      EXPECT_TRUE(std::abs(norm - 1.0) < 1e-6 || norm < 1e-9);
    }
  }
  for (real_t l : model.lambda) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GE(l, 0.0);
  }
  // The driver's internal fit matches the exact recomputation.
  EXPECT_NEAR(model.fit_to(t), result.final_fit, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace cstf
