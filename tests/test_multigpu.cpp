// Tests for the multi-GPU extension: sharding, exact MTTKRP equivalence,
// all-reduce cost model, and scaling behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "multigpu/multi_gpu.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "perfmodel/admm_model.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor random_tensor(std::uint64_t seed, index_t nnz = 4000) {
  RandomTensorParams params;
  params.dims = {80, 60, 40};
  params.target_nnz = nnz;
  params.seed = seed;
  return generate_random(params);
}

std::vector<Matrix> random_factors(const SparseTensor& t, index_t rank,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    Matrix f(t.dim(m), rank);
    f.fill_uniform(rng, 0.1, 1.0);
    factors.push_back(std::move(f));
  }
  return factors;
}

TEST(AllReduce, ZeroForSingleDevice) {
  MultiGpuOptions opt;
  opt.num_devices = 1;
  EXPECT_DOUBLE_EQ(allreduce_time(opt, 1e9), 0.0);
}

TEST(AllReduce, RingFormula) {
  MultiGpuOptions opt;
  opt.num_devices = 4;
  opt.interconnect_bandwidth = 100e9;
  opt.interconnect_latency = 1e-6;
  // 2 * 3/4 * 1e9 / 100e9 + 6 * 1e-6.
  EXPECT_NEAR(allreduce_time(opt, 1e9), 0.015 + 6e-6, 1e-12);
}

TEST(AllReduce, RingFormulaHandComputedAcrossRanks) {
  // 2*(ranks-1)/ranks of the payload crosses each link, plus 2*(ranks-1)
  // latency steps; a single rank has nothing to reduce.
  MultiGpuOptions opt;
  opt.interconnect_bandwidth = 200e9;
  opt.interconnect_latency = 2e-6;
  const double bytes = 4e8;
  for (int ranks : {1, 2, 4, 8}) {
    opt.num_devices = ranks;
    const double want =
        ranks == 1 ? 0.0
                   : 2.0 * (ranks - 1) / ranks * bytes / 200e9 +
                         2.0 * (ranks - 1) * 2e-6;
    EXPECT_DOUBLE_EQ(allreduce_time(opt, bytes), want) << "ranks=" << ranks;
  }
}

TEST(AllReduce, GrowsWithPayloadAndRanks) {
  MultiGpuOptions opt;
  opt.num_devices = 2;
  const double t2 = allreduce_time(opt, 1e9);
  opt.num_devices = 8;
  const double t8 = allreduce_time(opt, 1e9);
  EXPECT_GT(t8, t2);
  EXPECT_GT(allreduce_time(opt, 2e9), allreduce_time(opt, 1e9));
}

class MultiGpuDeviceCounts : public ::testing::TestWithParam<int> {};

TEST_P(MultiGpuDeviceCounts, ShardsPartitionTheNonzeros) {
  const SparseTensor t = random_tensor(1);
  MultiGpuOptions opt;
  opt.num_devices = GetParam();
  MultiGpuCstf engine(t, opt);
  EXPECT_LE(engine.num_devices(), GetParam());
  index_t total = 0;
  for (int d = 0; d < engine.num_devices(); ++d) {
    EXPECT_GT(engine.shard_nnz(d), 0);
    total += engine.shard_nnz(d);
  }
  EXPECT_EQ(total, t.nnz());
}

TEST_P(MultiGpuDeviceCounts, MttkrpMatchesSingleDeviceReference) {
  const SparseTensor t = random_tensor(2);
  const auto factors = random_factors(t, 8, 3);
  MultiGpuOptions opt;
  opt.num_devices = GetParam();
  MultiGpuCstf engine(t, opt);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), 8), got(t.dim(mode), 8);
    mttkrp_ref(t, factors, mode, want);
    engine.mttkrp(factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-9) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, MultiGpuDeviceCounts,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(MultiGpu, ModeledTimeImprovesWithMoreDevicesOnLargeWork) {
  const SparseTensor t = random_tensor(4, 20000);
  const auto factors = random_factors(t, 32, 5);
  auto modeled = [&](int devices) {
    MultiGpuOptions opt;
    opt.num_devices = devices;
    MultiGpuCstf engine(t, opt);
    Matrix out(t.dim(0), 32);
    engine.mttkrp(factors, 0, out);
    // Scale to a large workload so compute dominates the all-reduce.
    return engine.modeled_mttkrp_time(0, 32, /*nnz_scale=*/5000.0,
                                      /*dim_scale=*/100.0);
  };
  const double t1 = modeled(1);
  const double t4 = modeled(4);
  EXPECT_LT(t4, t1);
  // Not superlinear: 4 devices cannot beat 4x.
  EXPECT_GT(t4, t1 / 4.5);
}

TEST(MultiGpu, AllReduceLimitsScalingOnSmallWork) {
  const SparseTensor t = random_tensor(6, 2000);
  const auto factors = random_factors(t, 8, 7);
  MultiGpuOptions opt;
  opt.num_devices = 8;
  opt.interconnect_bandwidth = 1e9;  // deliberately slow link
  MultiGpuCstf engine(t, opt);
  Matrix out(t.dim(0), 8);
  engine.mttkrp(factors, 0, out);
  const double with_slow_link =
      engine.modeled_mttkrp_time(0, 8, 1.0, /*dim_scale=*/1e4);
  // The all-reduce of the (scaled) 80e4 x 8 output dominates at 1 GB/s.
  const double reduce_only = allreduce_time(opt, 80.0 * 1e4 * 8.0 * 8.0);
  EXPECT_GT(with_slow_link, 0.9 * reduce_only);
}

TEST(MultiGpu, OverlappedWithOneChunkEqualsSerialModel) {
  const SparseTensor t = random_tensor(10, 8000);
  const auto factors = random_factors(t, 16, 11);
  MultiGpuOptions opt;
  opt.num_devices = 4;
  MultiGpuCstf engine(t, opt);
  Matrix out(t.dim(0), 16);
  engine.mttkrp(factors, 0, out);
  const double serial = engine.modeled_mttkrp_time(0, 16, 10.0, 10.0);
  int used = 0;
  const double one_chunk =
      engine.modeled_mttkrp_time_overlapped(0, 16, 10.0, 10.0, 1, &used);
  EXPECT_EQ(used, 1);
  EXPECT_DOUBLE_EQ(one_chunk, serial);  // C=1 degenerates to the serial model
}

TEST(MultiGpu, OverlappedBoundedBySerialAndSlowestShard) {
  // A slow interconnect with a long output mode exposes the all-reduce tail;
  // the chunked overlap must land strictly between the roofline lower bound
  // (the slowest shard's compute, which can never be hidden) and the serial
  // slowest-shard-plus-all-reduce model.
  const SparseTensor t = random_tensor(8, 20000);
  const auto factors = random_factors(t, 32, 9);
  MultiGpuOptions opt;
  opt.num_devices = 8;
  opt.interconnect_bandwidth = 5e9;
  MultiGpuCstf engine(t, opt);
  Matrix out(t.dim(0), 32);
  engine.mttkrp(factors, 0, out);
  // Scales chosen so shard compute and all-reduce are the same order of
  // magnitude — the regime where chunked pipelining pays.
  const double nnz_scale = 2e4, dim_scale = 1e3;
  const double serial = engine.modeled_mttkrp_time(0, 32, nnz_scale, dim_scale);
  int chunks = 0;
  const double ovl = engine.modeled_mttkrp_time_overlapped(
      0, 32, nnz_scale, dim_scale, 0, &chunks);
  EXPECT_GE(chunks, 1);
  EXPECT_LE(ovl, serial * (1.0 + 1e-12));
  double slowest = 0.0;
  for (int d = 0; d < engine.num_devices(); ++d) {
    slowest = std::max(
        slowest, perfmodel::modeled_time_scaled(engine.device(d), nnz_scale));
  }
  EXPECT_GE(ovl, slowest * (1.0 - 1e-12));
  // The exposed tail here is large, so chunking must strictly help.
  EXPECT_LT(ovl, serial);
  EXPECT_GT(chunks, 1);
}

TEST(MultiGpu, RejectsMoreDevicesThanNonzeros) {
  SparseTensor t({4, 4});
  t.append({0, 0}, 1.0);
  MultiGpuOptions opt;
  opt.num_devices = 2;
  EXPECT_THROW(MultiGpuCstf(t, opt), Error);
}

}  // namespace
}  // namespace cstf
