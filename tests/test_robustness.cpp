// Robustness and failure-injection tests: malformed inputs, degenerate
// tensors, extreme shapes, and numerical edge cases across the stack.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cstf/framework.hpp"
#include "cstf/metrics.hpp"
#include "formats/blco.hpp"
#include "la/blas.hpp"
#include "formats/csf.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "tensor/generate.hpp"
#include "tensor/io.hpp"

namespace cstf {
namespace {

TEST(RobustIo, TruncatedLineRejected) {
  std::stringstream ss;
  ss << "1\n";  // one token: cannot be index + value
  EXPECT_THROW(read_tns(ss), Error);
}

TEST(RobustIo, InconsistentModeCountRejected) {
  std::stringstream ss;
  ss << "1 1 1 2.0\n"
     << "1 1 3.0\n";  // 2 indices after a 3-index line
  EXPECT_THROW(read_tns(ss), Error);
}

TEST(RobustIo, DimsHintValidatesIndices) {
  std::stringstream ss;
  ss << "5 1 2.0\n";  // index 5 exceeds hinted dim 3
  EXPECT_THROW(read_tns(ss, {3, 3}), Error);
}

TEST(RobustIo, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path/data.tns"), Error);
}

TEST(RobustIo, NegativeValuesRoundTrip) {
  std::stringstream ss;
  ss << "1 1 -3.5e-8\n2 2 1e12\n";
  const SparseTensor t = read_tns(ss);
  EXPECT_DOUBLE_EQ(t.values()[0], -3.5e-8);
  EXPECT_DOUBLE_EQ(t.values()[1], 1e12);
}

TEST(RobustTensor, SingleNonzeroEverywhere) {
  SparseTensor t({5, 4, 3});
  t.append({2, 1, 0}, 7.0);
  const CsfTensor csf(t, 1);
  EXPECT_EQ(csf.nnz(), 1);
  const BlcoTensor blco(t);
  EXPECT_EQ(blco.num_blocks(), 1);

  Matrix a(5, 2), b(4, 2), c(3, 2);
  Rng rng(1);
  a.fill_uniform(rng);
  b.fill_uniform(rng);
  c.fill_uniform(rng);
  Matrix out(4, 2);
  mttkrp_ref(t, {a, b, c}, 1, out);
  for (index_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(out(1, r), 7.0 * a(2, r) * c(0, r), 1e-14);
  }
}

TEST(RobustTensor, ZeroValuedNonzerosAreHarmless) {
  SparseTensor t({3, 3});
  t.append({0, 0}, 0.0);
  t.append({1, 1}, 0.0);
  FrameworkOptions opt;
  opt.rank = 2;
  opt.max_iterations = 2;
  CstfFramework framework(t, opt);
  const AuntfResult result = framework.run();
  // A zero tensor is fit "perfectly" by anything; no NaNs may appear.
  for (const auto& f : framework.ktensor().factors) {
    for (index_t i = 0; i < f.size(); ++i) {
      EXPECT_TRUE(std::isfinite(f.data()[i]));
    }
  }
  EXPECT_TRUE(std::isfinite(result.final_fit));
}

TEST(RobustTensor, ModeOfLengthOne) {
  SparseTensor t({1, 6, 4});
  index_t coords[3];
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    coords[0] = 0;
    coords[1] = static_cast<index_t>(rng.uniform_index(6));
    coords[2] = static_cast<index_t>(rng.uniform_index(4));
    t.append(coords, rng.uniform(0.1, 1.0));
  }
  t.sort_by_mode(0);
  t.dedup_sum();
  FrameworkOptions opt;
  opt.rank = 2;
  opt.max_iterations = 3;
  CstfFramework framework(t, opt);
  EXPECT_NO_THROW(framework.run());
}

TEST(RobustTensor, RankLargerThanSmallestMode) {
  // R = 8 > dim 3: the Gram stays SPD thanks to the rho*I loading.
  SparseTensor t({3, 20, 15});
  Rng rng(3);
  index_t coords[3];
  for (int i = 0; i < 100; ++i) {
    coords[0] = static_cast<index_t>(rng.uniform_index(3));
    coords[1] = static_cast<index_t>(rng.uniform_index(20));
    coords[2] = static_cast<index_t>(rng.uniform_index(15));
    t.append(coords, rng.uniform(0.1, 1.0));
  }
  t.sort_by_mode(0);
  t.dedup_sum();
  FrameworkOptions opt;
  opt.rank = 8;
  opt.max_iterations = 4;
  CstfFramework framework(t, opt);
  const AuntfResult result = framework.run();
  EXPECT_TRUE(std::isfinite(result.final_fit));
}

TEST(RobustTensor, HugeValuesDoNotOverflow) {
  SparseTensor t({10, 10});
  Rng rng(4);
  index_t coords[2];
  for (int i = 0; i < 40; ++i) {
    coords[0] = static_cast<index_t>(rng.uniform_index(10));
    coords[1] = static_cast<index_t>(rng.uniform_index(10));
    t.append(coords, rng.uniform(1e8, 1e9));
  }
  t.sort_by_mode(0);
  t.dedup_sum();
  FrameworkOptions opt;
  opt.rank = 3;
  opt.max_iterations = 5;
  CstfFramework framework(t, opt);
  const AuntfResult result = framework.run();
  EXPECT_TRUE(std::isfinite(result.final_fit));
  EXPECT_GT(result.final_fit, 0.0);
}

TEST(RobustTensor, SixtyFourBitCoordinateSpace) {
  // Dimensions that together need ~60 bits of linearized coordinate.
  SparseTensor t({1 << 20, 1 << 20, 1 << 20});
  Rng rng(5);
  index_t coords[3];
  for (int i = 0; i < 500; ++i) {
    for (int m = 0; m < 3; ++m) {
      coords[m] = static_cast<index_t>(rng.uniform_index(1 << 20));
    }
    t.append(coords, 1.0);
  }
  t.sort_by_mode(0);
  t.dedup_sum();
  const BlcoTensor blco(t, 64);
  EXPECT_EQ(blco.nnz(), t.nnz());
  EXPECT_EQ(blco.encoding().total_bits(), 60);
  // Reconstruct a few coordinates to prove the packing is lossless.
  index_t decoded[kMaxModes];
  const BlcoBlock& blk = blco.block(0);
  blco.encoding().decode_all(blco.element_lco(blk, 0), decoded);
  for (int m = 0; m < 3; ++m) {
    EXPECT_GE(decoded[m], 0);
    EXPECT_LT(decoded[m], 1 << 20);
  }
}

TEST(RobustUpdates, AdmmWithAllZeroMttkrpOutput) {
  // M = 0 drives H toward 0; nothing may go NaN and the constraint holds.
  Rng rng(6);
  Matrix g(8, 4);
  g.fill_uniform(rng, 0.1, 1.0);
  Matrix s(4, 4);
  la::gram(g, s);
  Matrix m(30, 4);  // zeros
  Matrix h(30, 4);
  h.fill_uniform(rng, 0.0, 1.0);
  AdmmUpdate admm(AdmmOptions{});
  simgpu::Device dev(simgpu::a100());
  ModeState state;
  admm.update(dev, s, m, h, state);
  for (index_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(std::isfinite(h.data()[i]));
    EXPECT_GE(h.data()[i], 0.0);
  }
}

TEST(RobustFramework, ZeroIterationOptionsRejected) {
  SparseTensor t({4, 4});
  t.append({0, 0}, 1.0);
  FrameworkOptions opt;
  opt.rank = 2;
  opt.max_iterations = 0;
  EXPECT_THROW(CstfFramework(t, opt), Error);
}

TEST(RobustFramework, DeviceFootprintScalesWithRank) {
  RandomTensorParams params;
  params.dims = {100, 80, 60};
  params.target_nnz = 2000;
  params.seed = 9;
  const SparseTensor t = generate_random(params);
  FrameworkOptions small;
  small.rank = 8;
  FrameworkOptions large;
  large.rank = 32;
  CstfFramework fs(t, small), fl(t, large);
  EXPECT_GT(fs.device_footprint_bytes(), 0.0);
  EXPECT_GT(fl.device_footprint_bytes(), fs.device_footprint_bytes());
}

TEST(RobustFramework, DeterministicAcrossRuns) {
  RandomTensorParams params;
  params.dims = {40, 30, 20};
  params.target_nnz = 1500;
  params.seed = 10;
  const SparseTensor t = generate_random(params);
  FrameworkOptions opt;
  opt.rank = 4;
  opt.max_iterations = 4;
  CstfFramework a(t, opt), b(t, opt);
  a.run();
  b.run();
  EXPECT_NEAR(factor_match_score(a.ktensor(), b.ktensor()), 1.0, 1e-12);
}

}  // namespace
}  // namespace cstf
