// Unit tests for src/simgpu: cost model, kernel launch semantics, metered
// device BLAS.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/random.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/dblas.hpp"
#include "simgpu/device.hpp"
#include "simgpu/launch.hpp"

namespace cstf {
namespace {

using simgpu::Device;
using simgpu::DeviceSpec;
using simgpu::KernelCtx;
using simgpu::KernelStats;
using simgpu::LaunchConfig;

TEST(DeviceSpec, PresetsMatchPaperTable1) {
  const DeviceSpec a = simgpu::a100();
  const DeviceSpec h = simgpu::h100();
  const DeviceSpec x = simgpu::xeon_8367hc();
  EXPECT_DOUBLE_EQ(a.mem_bandwidth, 2039e9);
  EXPECT_DOUBLE_EQ(h.mem_bandwidth, 2039e9);  // equal by design (Table 1)
  EXPECT_GT(h.cache_bytes, a.cache_bytes);    // the H100's differentiator
  EXPECT_LT(x.mem_bandwidth, a.mem_bandwidth);
  EXPECT_GT(a.saturation_parallelism, x.saturation_parallelism);
}

TEST(CostModel, MissFractionBounds) {
  // Capacity misses only; the cold pass is charged separately in model_time.
  EXPECT_DOUBLE_EQ(simgpu::cache_miss_fraction(0.0, 40e6), 0.0);
  EXPECT_DOUBLE_EQ(simgpu::cache_miss_fraction(10e6, 40e6), 0.0);
  EXPECT_NEAR(simgpu::cache_miss_fraction(80e6, 40e6), 0.5, 1e-12);
  EXPECT_NEAR(simgpu::cache_miss_fraction(400e6, 40e6), 0.9, 1e-12);
  EXPECT_GT(simgpu::cache_miss_fraction(4e12, 40e6), 0.99);
}

TEST(CostModel, MissFractionMonotoneInWorkingSet) {
  double prev = 0.0;
  for (double ws = 1e6; ws < 1e9; ws *= 2) {
    const double miss = simgpu::cache_miss_fraction(ws, 40e6);
    EXPECT_GE(miss, prev);
    prev = miss;
  }
}

TEST(CostModel, UtilizationRampsAndSaturates) {
  EXPECT_NEAR(simgpu::parallel_utilization(500, 1000), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(simgpu::parallel_utilization(2000, 1000), 1.0);
  EXPECT_DOUBLE_EQ(simgpu::parallel_utilization(1000, 0.0), 1.0);
}

TEST(CostModel, BandwidthBoundKernelTimeScalesWithBytes) {
  const DeviceSpec spec = simgpu::a100();
  KernelStats small, large;
  small.bytes_streamed = 1e6;
  small.parallel_items = 1e9;
  large = small;
  large.bytes_streamed = 1e8;
  const double t_small = simgpu::model_time(small, spec).total_s;
  const double t_large = simgpu::model_time(large, spec).total_s;
  EXPECT_NEAR(t_large / t_small, 100.0, 1.0);
}

TEST(CostModel, LaunchOverheadDominatesTinyKernels) {
  const DeviceSpec spec = simgpu::a100();
  KernelStats tiny;
  tiny.flops = 100;
  tiny.bytes_streamed = 800;
  tiny.launches = 1;
  tiny.parallel_items = 10;
  const auto t = simgpu::model_time(tiny, spec);
  EXPECT_GT(t.launch_s, 10 * (t.compute_s + t.memory_s));
}

TEST(CostModel, SerialChainIsChargedAtSerialRate) {
  const DeviceSpec spec = simgpu::a100();
  KernelStats trsv;
  trsv.serial_depth = 1.41e9;  // exactly one second of dependent ops
  trsv.parallel_items = 1e9;
  const auto t = simgpu::model_time(trsv, spec);
  EXPECT_NEAR(t.serial_s, 1.0, 1e-9);
  EXPECT_GE(t.total_s, 1.0);
}

TEST(CostModel, H100BeatsA100OnCacheResidentReuseTraffic) {
  // Working set between the two cache sizes: fits on H100, spills on A100.
  KernelStats stats;
  stats.bytes_reused = 1e9;
  stats.working_set_bytes = 45e6;  // A100 L2 = 40 MB < 45 MB < 50 MB = H100 L2
  stats.parallel_items = 1e9;
  const double t_a100 = simgpu::model_time(stats, simgpu::a100()).total_s;
  const double t_h100 = simgpu::model_time(stats, simgpu::h100()).total_s;
  EXPECT_LT(t_h100, t_a100);
}

TEST(CostModel, GpuBeatsCpuOnStreamingTraffic) {
  KernelStats stats;
  stats.bytes_streamed = 1e9;
  stats.parallel_items = 1e9;
  const double t_gpu = simgpu::model_time(stats, simgpu::a100()).total_s;
  const double t_cpu = simgpu::model_time(stats, simgpu::xeon_8367hc()).total_s;
  // Bandwidth ratio ~10x; require clearly >5x.
  EXPECT_GT(t_cpu / t_gpu, 5.0);
}

TEST(CostModel, AtomicContentionFactorHandValues) {
  // factor = 1 + (lanes - 1) / slots.
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(1.0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(4.0, 2.0), 2.5);
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(100000.0, 1000.0),
                   1.0 + 99999.0 / 1000.0);
  // Unknown slot count -> no contention modeled.
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(8.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(8.0, -1.0), 1.0);
  // A single lane never collides.
  EXPECT_DOUBLE_EQ(simgpu::atomic_contention_factor(0.5, 16.0), 1.0);
}

TEST(CostModel, AtomicTermMatchesHandComputation) {
  const DeviceSpec spec = simgpu::a100();
  KernelStats stats;
  stats.atomic_ops = 1e6;
  stats.atomic_slots = 1000.0;
  stats.parallel_items = 1e9;  // saturates: lanes = saturation_parallelism
  const double lanes = spec.saturation_parallelism;
  const double expected =
      1e6 * (1.0 + (lanes - 1.0) / 1000.0) / spec.atomic_rate;
  const auto t = simgpu::model_time(stats, spec);
  EXPECT_NEAR(t.atomic_s, expected, 1e-12 * expected);
  // The atomic term competes in the roofline max, so it bounds the total.
  EXPECT_GE(t.total_s, t.atomic_s);
}

TEST(CostModel, AtomicTermDisabledWithoutRateOrOps) {
  KernelStats stats;
  stats.atomic_ops = 1e6;
  stats.atomic_slots = 1000.0;
  stats.parallel_items = 1e6;
  DeviceSpec no_rate = simgpu::a100();
  no_rate.atomic_rate = 0.0;  // machine not characterized -> term off
  EXPECT_DOUBLE_EQ(simgpu::model_time(stats, no_rate).atomic_s, 0.0);
  KernelStats no_atomics;
  no_atomics.bytes_streamed = 1e9;
  no_atomics.parallel_items = 1e6;
  EXPECT_DOUBLE_EQ(simgpu::model_time(no_atomics, simgpu::a100()).atomic_s,
                   0.0);
}

TEST(CostModel, FewerSlotsMeanMoreContention) {
  // Same op count scattered over fewer output words must never model faster:
  // the short-mode pathology of the paper's MTTKRP scatter.
  const DeviceSpec spec = simgpu::a100();
  auto time_with_slots = [&](double slots) {
    KernelStats stats;
    stats.atomic_ops = 1e7;
    stats.atomic_slots = slots;
    stats.parallel_items = 1e7;
    return simgpu::model_time(stats, spec).atomic_s;
  };
  EXPECT_GT(time_with_slots(1e3), time_with_slots(1e5));
  EXPECT_GT(time_with_slots(1e5), time_with_slots(1e8));
}

TEST(KernelStats, AccumulationKeepsSmallestNonzeroSlotCount) {
  // Aggregated records must stay conservative: combining launches with
  // different slot counts keeps the most contended (smallest) one, so the
  // aggregate is never modeled faster than the sum of its launches.
  KernelStats a;
  a.atomic_ops = 10.0;
  a.atomic_slots = 96.0;
  KernelStats b;
  b.atomic_ops = 5.0;
  b.atomic_slots = 56.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.atomic_ops, 15.0);
  EXPECT_DOUBLE_EQ(a.atomic_slots, 56.0);
  // Zero means "unset", not "zero slots": it never wins the min...
  KernelStats c;
  c.atomic_ops = 1.0;
  a += c;
  EXPECT_DOUBLE_EQ(a.atomic_slots, 56.0);
  // ...and is replaced by the first real value.
  KernelStats d;
  d += a;
  EXPECT_DOUBLE_EQ(d.atomic_slots, 56.0);
}

TEST(Launch, ExecutesEveryThreadExactlyOnce) {
  Device dev(simgpu::a100());
  constexpr index_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  LaunchConfig cfg{.grid_dim = simgpu::blocks_for(n, 128), .block_dim = 128};
  simgpu::launch(dev, "hit_all", cfg, KernelStats{}, [&](const KernelCtx& ctx) {
    const index_t gid = ctx.global_thread_id();
    if (gid < n) hits[gid].fetch_add(1);
  });
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Launch, GridStrideLoopCoversOversizedRange) {
  Device dev(simgpu::a100());
  constexpr index_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  LaunchConfig cfg{.grid_dim = 4, .block_dim = 32};  // far fewer threads than n
  simgpu::launch(dev, "stride", cfg, KernelStats{}, [&](const KernelCtx& ctx) {
    for (index_t i = ctx.global_thread_id(); i < n; i += ctx.total_threads()) {
      hits[i].fetch_add(1);
    }
  });
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Launch, SharedMemoryIsPerBlockAndZeroed) {
  Device dev(simgpu::a100());
  constexpr index_t blocks = 8, threads = 16;
  std::vector<real_t> block_sums(blocks, 0.0);
  LaunchConfig cfg{.grid_dim = blocks, .block_dim = threads, .shmem_reals = 1};
  simgpu::launch(dev, "blk_reduce", cfg, KernelStats{},
                 [&](const KernelCtx& ctx) {
                   // Threads in a block run sequentially: plain accumulation
                   // into shared memory is the documented reduction idiom.
                   ctx.shared[0] += 1.0;
                   if (ctx.thread_idx == ctx.block_dim - 1) {
                     block_sums[ctx.block_idx] = ctx.shared[0];
                   }
                 });
  for (index_t b = 0; b < blocks; ++b) {
    EXPECT_DOUBLE_EQ(block_sums[b], static_cast<real_t>(threads));
  }
}

TEST(Launch, RecordsStatsOnDevice) {
  Device dev(simgpu::h100());
  KernelStats stats;
  stats.flops = 123.0;
  stats.bytes_streamed = 456.0;
  simgpu::launch(dev, "meter_me", LaunchConfig{.grid_dim = 2, .block_dim = 4},
                 stats, [](const KernelCtx&) {});
  EXPECT_DOUBLE_EQ(dev.total().flops, 123.0);
  EXPECT_DOUBLE_EQ(dev.total().bytes_streamed, 456.0);
  EXPECT_EQ(dev.total().launches, 1);
  EXPECT_DOUBLE_EQ(dev.total().parallel_items, 8.0);
  EXPECT_EQ(dev.per_kernel().count("meter_me"), 1u);
  dev.reset();
  EXPECT_DOUBLE_EQ(dev.total().flops, 0.0);
  EXPECT_TRUE(dev.per_kernel().empty());
}

TEST(Launch, AccumulatesAcrossLaunches) {
  Device dev(simgpu::a100());
  KernelStats stats;
  stats.flops = 10.0;
  for (int i = 0; i < 5; ++i) {
    simgpu::launch(dev, "k", LaunchConfig{}, stats, [](const KernelCtx&) {});
  }
  EXPECT_DOUBLE_EQ(dev.total().flops, 50.0);
  EXPECT_EQ(dev.total().launches, 5);
}

TEST(DeviceBlas, DgemmMatchesHostGemmAndMeters) {
  Device dev(simgpu::a100());
  Rng rng(1);
  Matrix a(20, 8), b(8, 8), c(20, 8), want(20, 8);
  a.fill_normal(rng);
  b.fill_normal(rng);
  simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, a, b, 0.0, c);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, a, b, 0.0, want);
  EXPECT_LT(max_abs_diff(c, want), 1e-14);
  EXPECT_DOUBLE_EQ(dev.total().flops, 2.0 * 20 * 8 * 8);
  EXPECT_GT(dev.total().total_bytes(), 0.0);
}

TEST(DeviceBlas, DsyrkGramMatchesHost) {
  Device dev(simgpu::a100());
  Rng rng(2);
  Matrix a(30, 6), s(6, 6), want(6, 6);
  a.fill_normal(rng);
  simgpu::dsyrk_gram(dev, a, s);
  la::gram(a, want);
  EXPECT_LT(max_abs_diff(s, want), 1e-14);
}

TEST(DeviceBlas, DpotrsSolvesAndChargesSerialDepth) {
  Device dev(simgpu::a100());
  Rng rng(3);
  Matrix b0(8, 8);
  b0.fill_normal(rng);
  Matrix s(8, 8);
  la::gram(b0, s);
  la::add_diagonal(s, 8.0);
  Matrix l;
  simgpu::dpotrf(dev, s, l);
  Matrix x(8, 3);
  x.fill_normal(rng);
  Matrix rhs(8, 3);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, s, x, 0.0, rhs);
  simgpu::dpotrs(dev, l, rhs);
  EXPECT_LT(max_abs_diff(rhs, x), 1e-9);
  EXPECT_GT(dev.per_kernel().at("dpotrs").serial_depth, 0.0);
}

TEST(DeviceBlas, DpotriProducesInverse) {
  Device dev(simgpu::h100());
  Rng rng(4);
  Matrix b0(10, 5);
  b0.fill_normal(rng);
  Matrix s(5, 5);
  la::gram(b0, s);
  la::add_diagonal(s, 5.0);
  Matrix l, inv;
  simgpu::dpotrf(dev, s, l);
  simgpu::dpotri(dev, l, inv);
  Matrix prod(5, 5);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, inv, s, 0.0, prod);
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(5)), 1e-10);
}

TEST(DeviceBlas, ModeledTimeIsPositiveAndAdditive) {
  Device dev(simgpu::a100());
  Rng rng(5);
  Matrix a(100, 32), b(32, 32), c(100, 32);
  a.fill_normal(rng);
  b.fill_normal(rng);
  simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, a, b, 0.0, c);
  const double t1 = dev.modeled_time_s();
  EXPECT_GT(t1, 0.0);
  simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, a, b, 0.0, c);
  EXPECT_GT(dev.modeled_time_s(), t1);
}

TEST(Device, ModeledKernelTimeIsolatesOneKernel) {
  Device dev(simgpu::a100());
  KernelStats big;
  big.bytes_streamed = 1e9;
  big.parallel_items = 1e9;
  dev.record("big", big);
  KernelStats small;
  small.bytes_streamed = 1e6;
  small.parallel_items = 1e9;
  dev.record("small", small);
  EXPECT_GT(dev.modeled_kernel_time_s("big"),
            100.0 * dev.modeled_kernel_time_s("small"));
  EXPECT_DOUBLE_EQ(dev.modeled_kernel_time_s("missing"), 0.0);
  EXPECT_NEAR(dev.modeled_time_s(), dev.modeled_kernel_time_s("big") +
                                        dev.modeled_kernel_time_s("small"),
              1e-12);
}

TEST(CostModel, HostLinkStagingOverlapsWithCompute) {
  const DeviceSpec spec = simgpu::a100();
  KernelStats stats;
  stats.bytes_streamed = 1e9;  // ~0.68 ms at stream bw
  stats.parallel_items = 1e9;
  stats.host_link_bytes = 1e6;  // 40 us on the link: hidden
  const auto hidden = simgpu::model_time(stats, spec);
  EXPECT_DOUBLE_EQ(hidden.total_s,
                   simgpu::model_time([&] {
                     KernelStats s2 = stats;
                     s2.host_link_bytes = 0.0;
                     return s2;
                   }(), spec).total_s);
  stats.host_link_bytes = 1e9;  // 40 ms on the link: binds
  const auto bound = simgpu::model_time(stats, spec);
  EXPECT_NEAR(bound.total_s, 1e9 / spec.host_link_bandwidth, 1e-6);
}

TEST(DeviceBlas, Dnrm2MatchesHostNorm) {
  Device dev(simgpu::a100());
  Matrix a = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(simgpu::dnrm2_sq(dev, a), 25.0);
  EXPECT_EQ(dev.per_kernel().count("dnrm2"), 1u);
}

// --- streams and the modeled timeline ---------------------------------------

TEST(Stream, DefaultStreamOnlyModelsAsLegacySerialSum) {
  // No explicit streams anywhere: the timeline never goes concurrent and
  // modeled_time_s() is exactly the pre-stream per-kernel-aggregate sum.
  Device dev(simgpu::a100());
  KernelStats a;
  a.bytes_streamed = 1e8;
  a.parallel_items = 1e9;
  dev.record("a", a);
  KernelStats b;
  b.flops = 1e10;
  b.parallel_items = 1e9;
  dev.record("b", b);
  simgpu::launch(dev, "c", LaunchConfig{.grid_dim = 2, .block_dim = 32}, a,
                 [](const KernelCtx&) {});
  EXPECT_FALSE(dev.timeline().concurrent());
  EXPECT_DOUBLE_EQ(dev.modeled_time_s(), dev.serial_modeled_time_s());
}

TEST(Stream, TwoStreamPipelineMakespanIsHandComputed) {
  // Classic double-buffered copy/compute pipeline with fixed durations:
  //   copy:    copy0 [0,2]  copy1 [2,4]
  //   default: compute0 waits copy0 -> [2,5]; compute1 waits copy1 -> [5,8]
  // Serial sum is 10 s; the pipelined makespan must be exactly 8 s.
  Device dev(simgpu::a100());
  const simgpu::Stream copy = dev.create_stream("copy");
  dev.record_fixed("copy0", 2.0, copy);
  const simgpu::Event e0 = dev.record_event(copy);
  dev.record_fixed("copy1", 2.0, copy);
  const simgpu::Event e1 = dev.record_event(copy);
  dev.wait_event(simgpu::Stream{}, e0);
  dev.record_fixed("compute0", 3.0);
  dev.wait_event(simgpu::Stream{}, e1);
  dev.record_fixed("compute1", 3.0);
  EXPECT_TRUE(dev.timeline().concurrent());
  EXPECT_DOUBLE_EQ(dev.modeled_time_s(), 8.0);
}

TEST(Stream, EventOrdersConsumerAfterProducer) {
  Device dev(simgpu::a100());
  dev.record_fixed("produce", 1.0);
  const simgpu::Event done = dev.record_event();
  const simgpu::Stream s = dev.create_stream("consumer");
  dev.wait_event(s, done);
  dev.record_fixed("consume", 1.0, s);
  EXPECT_DOUBLE_EQ(dev.modeled_time_s(), 2.0);  // serialized by the event
}

TEST(Stream, UnrecordedEventWaitIsNoOp) {
  Device dev(simgpu::a100());
  const simgpu::Stream s = dev.create_stream("other");
  simgpu::Event never;
  EXPECT_FALSE(never.recorded());
  dev.wait_event(s, never);
  dev.record_fixed("a", 1.0);
  dev.record_fixed("b", 1.0, s);
  EXPECT_DOUBLE_EQ(dev.modeled_time_s(), 1.0);  // fully overlapped
}

TEST(Stream, BandwidthBoundSpansCannotOverlapBeyondRoofline) {
  // Two memory-bound kernels on two streams share one memory system: the
  // makespan is clamped to their summed memory busy time — identical to
  // running them back to back.
  Device dev(simgpu::a100());
  KernelStats stats;
  stats.bytes_streamed = 1e9;
  stats.parallel_items = 1e9;
  const simgpu::Stream s = dev.create_stream("second");
  dev.record("mem_a", stats);
  dev.record("mem_b", stats, 0.0, s);
  const double one = simgpu::model_time(stats, dev.spec()).memory_s;
  EXPECT_NEAR(dev.modeled_time_s(), 2.0 * one, 1e-12);
  EXPECT_NEAR(dev.modeled_time_s(), dev.serial_modeled_time_s(),
              1e-9 * dev.serial_modeled_time_s());
}

TEST(Stream, ComputeHidesBehindHostLinkTransfer) {
  // A flop-bound kernel and a host-link transfer use different resources, so
  // they genuinely overlap: makespan ~ max, strictly below the serial sum.
  Device dev(simgpu::a100());
  KernelStats compute;
  compute.flops = 1e12;
  compute.parallel_items = 1e9;
  KernelStats copy;
  copy.host_link_bytes = 1e9;
  copy.parallel_items = 1.0;
  const simgpu::Stream h2d = dev.create_stream("h2d");
  dev.record("compute", compute);
  dev.record("copy", copy, 0.0, h2d);
  const double t_compute = simgpu::model_time(compute, dev.spec()).total_s;
  const double t_copy = simgpu::model_time(copy, dev.spec()).total_s;
  EXPECT_GE(dev.modeled_time_s(), std::max(t_compute, t_copy) * (1 - 1e-12));
  EXPECT_LT(dev.modeled_time_s(), 0.99 * dev.serial_modeled_time_s());
}

TEST(Stream, LaunchConfigRoutesSpanToStream) {
  // The stream is the fourth launch-config parameter, as in CUDA.
  Device dev(simgpu::a100());
  const simgpu::Stream io = dev.create_stream("io");
  simgpu::launch(dev, "on_stream",
                 LaunchConfig{.grid_dim = 1, .block_dim = 1, .stream = io},
                 KernelStats{}, [](const KernelCtx&) {});
  ASSERT_EQ(dev.timeline().span_count(), 1u);
  EXPECT_EQ(dev.timeline().span(0).stream, io.id());
  EXPECT_TRUE(dev.timeline().concurrent());
}

TEST(Stream, ResetKeepsStreamHandlesUsable) {
  Device dev(simgpu::a100());
  const simgpu::Stream s = dev.create_stream("kept");
  dev.record_fixed("x", 1.0, s);
  EXPECT_TRUE(dev.timeline().concurrent());
  dev.reset();
  EXPECT_FALSE(dev.timeline().concurrent());
  EXPECT_EQ(dev.timeline().span_count(), 0u);
  EXPECT_EQ(dev.timeline().num_streams(), 2);
  EXPECT_EQ(dev.timeline().stream_name(s.id()), "kept");
  dev.record_fixed("y", 1.0, s);  // the old handle still targets its lane
  EXPECT_DOUBLE_EQ(dev.modeled_time_s(), 1.0);
}

TEST(Stream, MakespanScalesExtensiveQuantities) {
  // modeled_makespan_s(k) is the stream analog of modeled_time_scaled: a
  // bandwidth-bound span's time grows by k; fixed spans do not.
  Device dev(simgpu::a100());
  KernelStats stats;
  stats.bytes_streamed = 1e9;
  stats.parallel_items = 1e9;
  dev.record("mem", stats, 0.0, dev.create_stream("lane"));
  const double base = dev.modeled_makespan_s();
  EXPECT_NEAR(dev.modeled_makespan_s(10.0), 10.0 * base, 1e-9 * base);
  Device fixed(simgpu::a100());
  fixed.record_fixed("ext", 2.0, fixed.create_stream("lane"));
  EXPECT_DOUBLE_EQ(fixed.modeled_makespan_s(10.0), 2.0);
}

}  // namespace
}  // namespace cstf
