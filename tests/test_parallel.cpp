// Unit tests for src/parallel: thread pool, parallel loops, reductions,
// atomic accumulation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "parallel/atomic.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scratch_pool.hpp"
#include "parallel/thread_pool.hpp"

namespace cstf {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.run([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EveryWorkerRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t w) { hits[w].fetch_add(1); });
  for (int w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1) << "worker " << w;
}

TEST(ThreadPool, ReusableAcrossManyRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int iter = 0; iter < 50; ++iter) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run([&](std::size_t w) {
        if (w == 2) throw Error("boom from worker 2");
      }),
      Error);
  // Pool must stay usable after an exception.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, CallerExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([&](std::size_t w) {
                 if (w == 0) throw Error("boom from caller");
               }),
               Error);
}

// Regression: when a worker and the caller both throw, the caller's error
// used to win unconditionally and the worker's was silently dropped (and
// could leak into the next run). The first-recorded error must propagate.
TEST(ThreadPool, WorkerErrorWinsWhenCallerAlsoThrows) {
  ThreadPool pool(4);
  std::string message;
  try {
    pool.run([&](std::size_t w) {
      if (w == 1) throw Error("worker error");
      if (w == 0) {
        // Give the worker ample time to record its error first, then fail
        // on the caller too.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        throw Error("caller error");
      }
    });
    FAIL() << "run() must rethrow";
  } catch (const Error& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("worker error"), std::string::npos) << message;

  // The error slot must be cleared: a subsequent clean run neither throws
  // nor replays the stale exception.
  std::atomic<int> ok{0};
  EXPECT_NO_THROW(pool.run([&](std::size_t) { ok.fetch_add(1); }));
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, InParallelRegionFlagIsSetInsideRun) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  pool.run([&](std::size_t) { EXPECT_TRUE(ThreadPool::in_parallel_region()); });
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr index_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](index_t i) { hits[i].fetch_add(1); }, /*grain=*/16);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndNegativeRangesAreNoOps) {
  int calls = 0;
  parallel_for(5, 5, [&](index_t) { ++calls; });
  parallel_for(9, 3, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, OffsetRange) {
  std::vector<int> hits(20, 0);
  parallel_for(10, 20, [&](index_t i) { hits[i] = 1; }, /*grain=*/1);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i], 0);
  for (index_t i = 10; i < 20; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelForBlocked, BlocksPartitionTheRange) {
  constexpr index_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_blocked(0, n, [&](index_t lo, index_t hi) {
    ASSERT_LT(lo, hi);
    for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*grain=*/8);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NestedCallsRunSequentiallyAndCoverRange) {
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for(0, 64, [&](index_t i) {
    parallel_for(0, 64, [&](index_t j) { hits[i * 64 + j].fetch_add(1); },
                 /*grain=*/1);
  }, /*grain=*/1);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelReduce, MatchesSerialSum) {
  constexpr index_t n = 1 << 18;
  const auto mapper = [](index_t i) { return static_cast<double>(i % 97); };
  double serial = 0.0;
  for (index_t i = 0; i < n; ++i) serial += mapper(i);
  const double parallel = parallel_sum(0, n, mapper, /*grain=*/64);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ParallelReduce, CustomCombineMax) {
  constexpr index_t n = 10000;
  std::vector<double> data(n);
  Rng rng(1);
  for (auto& d : data) d = rng.uniform();
  data[7777] = 2.0;
  const double result = parallel_reduce<double>(
      0, n, -1.0, [&](index_t i) { return data[i]; },
      [](double a, double b) { return a > b ? a : b; }, /*grain=*/32);
  EXPECT_DOUBLE_EQ(result, 2.0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const double result = parallel_reduce<double>(
      3, 3, 42.0, [](index_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(result, 42.0);
}

TEST(AtomicAdd, SingleThreadAccumulates) {
  real_t x = 1.5;
  atomic_add(&x, 2.5);
  EXPECT_DOUBLE_EQ(x, 4.0);
}

TEST(AtomicAdd, NoLostUpdatesUnderContention) {
  real_t target = 0.0;
  constexpr index_t n = 200000;
  parallel_for(0, n, [&](index_t) { atomic_add(&target, 1.0); }, /*grain=*/1);
  EXPECT_DOUBLE_EQ(target, static_cast<real_t>(n));
}

TEST(GlobalPool, ExistsAndHasAtLeastOneThread) {
  EXPECT_GE(global_thread_count(), 1u);
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ParallelFor, ChunkCountOversubscribesAndRespectsGrain) {
  using detail::parallel_chunk_count;
  // 4x the worker count when the range is large enough...
  EXPECT_EQ(parallel_chunk_count(100000, 4, 1024), 16);
  EXPECT_EQ(parallel_chunk_count(100, 4, 1), 16);
  // ...but never chunks smaller than the grain...
  EXPECT_EQ(parallel_chunk_count(2048, 4, 1024), 2);
  EXPECT_EQ(parallel_chunk_count(10, 4, 1024), 1);
  // ...and always at least one chunk.
  EXPECT_EQ(parallel_chunk_count(0, 4, 1024), 1);
}

// Regression for the static one-chunk-per-worker split: the range must be
// cut into ~4x more chunks than workers (claimed dynamically), so skewed
// work clustered in one contiguous stretch is spread over several chunks
// instead of serializing on the single worker that owned the stretch.
TEST(ParallelForBlocked, DynamicChunksOversubscribeWorkers) {
  ThreadPool pool(4);
  std::atomic<int> blocks{0};
  std::atomic<index_t> covered{0};
  constexpr index_t n = 1 << 16;
  parallel_for_blocked(
      pool, 0, n,
      [&](index_t lo, index_t hi) {
        ASSERT_LT(lo, hi);
        blocks.fetch_add(1);
        covered.fetch_add(hi - lo);
        EXPECT_LE(hi - lo, n / 16);  // nothing bigger than the 4x split
      },
      /*grain=*/16);
  EXPECT_EQ(covered.load(), n);
  EXPECT_EQ(blocks.load(), 16);
}

TEST(ParallelFor, SkewedWorkloadStillCoversRangeExactlyOnce) {
  // Heavy items clustered at the front of the range (the hot-row pattern of
  // skewed sparse tensors) must not break coverage under dynamic claiming.
  ThreadPool pool(4);
  constexpr index_t n = 20000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      pool, 0, n,
      [&](index_t i) {
        if (i < n / 16) {
          volatile double sink = 0.0;
          for (int k = 0; k < 200; ++k) sink += static_cast<double>(k);
        }
        hits[i].fetch_add(1);
      },
      /*grain=*/64);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ScratchPool, LeaseHandsOutDistinctBuffersAndRecycles) {
  ScratchPool pool;
  {
    ScratchPool::Lease lease = pool.acquire(3, 128);
    ASSERT_EQ(lease.count(), 3u);
    // Distinct, writable buffers.
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = i + 1; j < 3; ++j) {
        EXPECT_NE(lease.tile(i), lease.tile(j));
      }
      lease.tile(i)[0] = static_cast<real_t>(i);
      lease.tile(i)[127] = 1.0;
    }
    EXPECT_EQ(pool.idle_buffers(), 0u);
  }
  // Returned on lease destruction, recycled by the next acquire.
  EXPECT_EQ(pool.idle_buffers(), 3u);
  ScratchPool::Lease again = pool.acquire(2, 64);
  EXPECT_EQ(again.count(), 2u);
  EXPECT_EQ(pool.idle_buffers(), 1u);
}

TEST(ScratchPool, RecyclesLargestBuffersFirst) {
  ScratchPool pool;
  {
    ScratchPool::Lease small = pool.acquire(1, 10);
    ScratchPool::Lease large = pool.acquire(1, 1000);
  }
  EXPECT_EQ(pool.idle_buffers(), 2u);
  // A request that fits the big buffer must get it (no reallocation), so a
  // subsequent larger request only grows the high-water-mark buffer.
  {
    ScratchPool::Lease lease = pool.acquire(1, 500);
    lease.tile(0)[999] = 1.0;  // big buffer capacity; ASan would catch misuse
  }
  pool.trim();
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(ScratchPool, ZeroCountLeaseIsSafe) {
  ScratchPool pool;
  ScratchPool::Lease lease = pool.acquire(0, 64);
  EXPECT_EQ(lease.count(), 0u);
}

TEST(DeterministicTreeReduce, MatchesSerialSumAndIsExactlyReproducible) {
  constexpr index_t len = 3000;
  constexpr std::size_t tiles = 7;
  Rng rng(17);
  std::vector<std::vector<real_t>> data(tiles, std::vector<real_t>(len));
  for (auto& tile : data) {
    for (auto& v : tile) v = rng.uniform(-1.0, 1.0);
  }
  auto reduce_once = [&]() {
    std::vector<std::vector<real_t>> work = data;
    std::vector<real_t*> ptrs;
    for (auto& tile : work) ptrs.push_back(tile.data());
    deterministic_tree_reduce(ptrs.data(), tiles, len);
    return work[0];
  };
  const std::vector<real_t> first = reduce_once();
  // Bit-identical across repeats (fixed pairwise tree, no atomics).
  EXPECT_EQ(reduce_once(), first);
  // And numerically the sum of all tiles.
  for (index_t i = 0; i < len; i += 101) {
    real_t want = 0.0;
    for (const auto& tile : data) want += tile[static_cast<std::size_t>(i)];
    EXPECT_NEAR(first[static_cast<std::size_t>(i)], want, 1e-12);
  }
}

class ParallelForThreadCounts : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForThreadCounts, PoolOfAnySizeCoversRange) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  std::vector<std::atomic<int>> hits(1000);
  // Exercise the pool directly with a manual static partition.
  const index_t n = 1000;
  const auto workers = static_cast<index_t>(pool.num_threads());
  const index_t chunk = (n + workers - 1) / workers;
  pool.run([&](std::size_t w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = std::min<index_t>(lo + chunk, n);
    for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForThreadCounts,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace cstf
