// Serving-layer tests: model persistence (round trip + typed corruption
// rejection), ServableModel caches, the query/fold-in engines, the request
// batcher, hot-swap under concurrent load, and the latency recorders.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fold_in.hpp"
#include "serve/model_io.hpp"
#include "serve/model_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/runtime.hpp"
#include "serve/serve_stats.hpp"
#include "simgpu/device.hpp"
#include "simgpu/fault.hpp"
#include "updates/admm.hpp"

namespace cstf::serve {
namespace {

/// A small strictly-positive model (valid under the non-negative constraint
/// its metadata declares).
SavedModel make_saved_model(std::uint64_t seed = 5,
                            const std::string& name = "test-model") {
  Rng rng(seed);
  SavedModel saved;
  saved.model.factors.emplace_back(9, 3);
  saved.model.factors.emplace_back(7, 3);
  saved.model.factors.emplace_back(5, 3);
  for (Matrix& f : saved.model.factors) f.fill_uniform(rng, 0.1, 1.0);
  saved.model.lambda = {2.0, 1.5, 0.5};
  saved.meta.name = name;
  saved.meta.set_constraint(Proximity::non_negative());
  saved.meta.final_fit = 0.875;
  saved.meta.options_digest = 0xfeedbeefcafe1234ULL;
  saved.meta.seed = seed;
  saved.meta.iterations = 11;
  return saved;
}

/// A deterministic fold-in request against `model` (coords within bounds).
FoldInRequest make_request(const ServableModel& model, int mode,
                           std::uint64_t seed) {
  Rng rng(seed);
  FoldInRequest req;
  req.mode = mode;
  const int nnz = 3 + static_cast<int>(rng.uniform_index(4));
  for (int j = 0; j < nnz; ++j) {
    for (int m = 0; m < model.num_modes(); ++m) {
      if (m == mode) continue;
      req.coords.push_back(static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(model.mode_size(m)))));
    }
    req.values.push_back(rng.uniform(0.5, 2.0));
  }
  return req;
}

ModelIoStatus load_status(const std::string& path) {
  try {
    load_model(path);
  } catch (const ModelIoError& e) {
    return e.status();
  }
  ADD_FAILURE() << "load_model(" << path << ") unexpectedly succeeded";
  return ModelIoStatus::kOpenFailed;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ModelIo, RoundTripIsBitIdentical) {
  const SavedModel saved = make_saved_model();
  const std::string path = ::testing::TempDir() + "/roundtrip.cstf";
  save_model(saved, path);
  const SavedModel loaded = load_model(path);

  ASSERT_EQ(loaded.model.num_modes(), saved.model.num_modes());
  ASSERT_EQ(loaded.model.rank(), saved.model.rank());
  for (int m = 0; m < saved.model.num_modes(); ++m) {
    const Matrix& a = saved.model.factors[static_cast<std::size_t>(m)];
    const Matrix& b = loaded.model.factors[static_cast<std::size_t>(m)];
    ASSERT_EQ(a.rows(), b.rows());
    for (index_t i = 0; i < a.rows(); ++i) {
      for (index_t j = 0; j < a.cols(); ++j) {
        EXPECT_EQ(a(i, j), b(i, j)) << "mode " << m;  // exact, not NEAR
      }
    }
  }
  EXPECT_EQ(loaded.model.lambda, saved.model.lambda);
  EXPECT_EQ(loaded.meta.name, saved.meta.name);
  EXPECT_EQ(loaded.meta.constraint, saved.meta.constraint);
  EXPECT_EQ(loaded.meta.constraint_a, saved.meta.constraint_a);
  EXPECT_EQ(loaded.meta.constraint_b, saved.meta.constraint_b);
  EXPECT_EQ(loaded.meta.final_fit, saved.meta.final_fit);
  EXPECT_EQ(loaded.meta.options_digest, saved.meta.options_digest);
  EXPECT_EQ(loaded.meta.seed, saved.meta.seed);
  EXPECT_EQ(loaded.meta.iterations, saved.meta.iterations);
}

TEST(ModelIo, SaveLeavesNoTmpFile) {
  const std::string path = ::testing::TempDir() + "/notmp.cstf";
  save_model(make_saved_model(), path);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(ModelIo, LoadRejectsMissingFile) {
  EXPECT_EQ(load_status(::testing::TempDir() + "/no_such_model.cstf"),
            ModelIoStatus::kOpenFailed);
}

TEST(ModelIo, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/badmagic.cstf";
  std::ofstream(path, std::ios::binary) << "definitely not a model file";
  EXPECT_EQ(load_status(path), ModelIoStatus::kBadMagic);
}

TEST(ModelIo, LoadRejectsBadVersion) {
  const std::string path = ::testing::TempDir() + "/badversion.cstf";
  save_model(make_saved_model(), path);
  std::vector<char> bytes = read_bytes(path);
  bytes[8] = static_cast<char>(bytes[8] + 1);  // version u32 follows the magic
  write_bytes(path, bytes);
  EXPECT_EQ(load_status(path), ModelIoStatus::kBadVersion);
}

TEST(ModelIo, LoadRejectsTruncation) {
  const std::string path = ::testing::TempDir() + "/truncated.cstf";
  save_model(make_saved_model(), path);
  std::vector<char> bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes.resize(bytes.size() - 24);  // chop the footer + end of payload
  write_bytes(path, bytes);
  EXPECT_EQ(load_status(path), ModelIoStatus::kTruncated);
}

TEST(ModelIo, LoadRejectsBitFlip) {
  const std::string path = ::testing::TempDir() + "/bitflip.cstf";
  save_model(make_saved_model(), path);
  std::vector<char> bytes = read_bytes(path);
  // Flip one payload bit (well before the 8-byte checksum footer).
  bytes[bytes.size() - 32] ^= 0x10;
  write_bytes(path, bytes);
  EXPECT_EQ(load_status(path), ModelIoStatus::kChecksumMismatch);
}

TEST(ModelIo, SaveRejectsInvalidModel) {
  SavedModel saved = make_saved_model();
  saved.model.factors[1](2, 1) = std::nan("");
  const std::string path = ::testing::TempDir() + "/invalid.cstf";
  try {
    save_model(saved, path);
    FAIL() << "save_model accepted a NaN factor";
  } catch (const ModelIoError& e) {
    EXPECT_EQ(e.status(), ModelIoStatus::kInvalidModel);
  }
}

TEST(ModelIo, DigestTracksOptions) {
  FrameworkOptions a;
  FrameworkOptions b = a;
  EXPECT_EQ(digest_options(a), digest_options(b));
  b.rank = a.rank + 1;
  EXPECT_NE(digest_options(a), digest_options(b));
  b = a;
  b.prox = Proximity::l1_non_negative(0.25);
  EXPECT_NE(digest_options(a), digest_options(b));
}

TEST(ServableModel, CachesMatchDirectComputation) {
  const SavedModel saved = make_saved_model();
  const ServableModel snapshot(saved, /*generation=*/1);

  const index_t rank = saved.model.rank();
  for (int m = 0; m < saved.model.num_modes(); ++m) {
    Matrix expected_gram(rank, rank);
    la::gram(saved.model.factors[static_cast<std::size_t>(m)], expected_gram);
    for (index_t r = 0; r < rank; ++r) {
      for (index_t c = 0; c < rank; ++c) {
        EXPECT_DOUBLE_EQ(snapshot.gram(m)(r, c), expected_gram(r, c));
      }
    }
  }

  // S_0 = (lambda lambda^T) .* gram(1) .* gram(2).
  Matrix expected(rank, rank);
  expected.set_all(1.0);
  la::hadamard_inplace(expected, snapshot.gram(1));
  la::hadamard_inplace(expected, snapshot.gram(2));
  for (index_t r = 0; r < rank; ++r) {
    for (index_t c = 0; c < rank; ++c) {
      expected(r, c) *= saved.model.lambda[static_cast<std::size_t>(r)] *
                        saved.model.lambda[static_cast<std::size_t>(c)];
      EXPECT_DOUBLE_EQ(snapshot.fold_in_system(0)(r, c), expected(r, c));
    }
  }
  EXPECT_TRUE(snapshot.preinverted());
  EXPECT_TRUE(snapshot.fold_in_gram(0).preinverted());
  EXPECT_GT(snapshot.fold_in_gram(0).rho, 0.0);
}

TEST(ModelStore, PublishGetEraseAndGenerations) {
  ModelStore store;
  EXPECT_EQ(store.get("test-model"), nullptr);
  ServableModelPtr first = store.publish(make_saved_model(5));
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_EQ(store.get("test-model"), first);

  ServableModelPtr second = store.publish(make_saved_model(6));
  EXPECT_EQ(second->generation(), 2u);
  EXPECT_EQ(store.get("test-model"), second);
  // The swapped-out snapshot stays fully usable for in-flight holders.
  EXPECT_EQ(first->num_modes(), 3);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.generation(), 2u);

  EXPECT_TRUE(store.erase("test-model"));
  EXPECT_FALSE(store.erase("test-model"));
  EXPECT_EQ(store.get("test-model"), nullptr);
}

TEST(ModelStore, LoadAndPublishRoundTrip) {
  const std::string path = ::testing::TempDir() + "/published.cstf";
  save_model(make_saved_model(), path);
  ModelStore store;
  ServableModelPtr snapshot = store.load_and_publish(path);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->meta().name, "test-model");
  EXPECT_EQ(store.get("test-model"), snapshot);
}

TEST(QueryEngine, PredictMatchesValueAt) {
  const SavedModel saved = make_saved_model();
  const ServableModel snapshot(saved, 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  QueryEngine engine(runtime);

  std::vector<index_t> coords;
  std::vector<real_t> expected;
  Rng rng(17);
  for (int q = 0; q < 12; ++q) {
    index_t tuple[3];
    for (int m = 0; m < 3; ++m) {
      tuple[m] = static_cast<index_t>(rng.uniform_index(
          static_cast<std::uint64_t>(snapshot.mode_size(m))));
      coords.push_back(tuple[m]);
    }
    expected.push_back(saved.model.value_at(tuple));
  }
  const std::vector<real_t> got = engine.predict(snapshot, coords);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], expected[i]);
  }
  EXPECT_EQ(engine.latency().count(), 1);
}

TEST(QueryEngine, PredictRejectsOutOfRangeCoordinate) {
  const ServableModel snapshot(make_saved_model(), 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  QueryEngine engine(runtime);
  const std::vector<index_t> coords = {0, 0, snapshot.mode_size(2)};
  EXPECT_THROW(engine.predict(snapshot, coords), Error);
}

TEST(QueryEngine, TopKReturnsLargestScoresSorted) {
  const SavedModel saved = make_saved_model();
  const ServableModel snapshot(saved, 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  QueryEngine engine(runtime);

  const int target = 0;
  const std::vector<index_t> fixed = {0, 2, 3};
  const int k = 4;
  const std::vector<ScoredEntry> top =
      engine.top_k(snapshot, target, fixed, k);
  ASSERT_EQ(top.size(), static_cast<std::size_t>(k));

  std::vector<real_t> all(static_cast<std::size_t>(snapshot.mode_size(target)));
  for (index_t i = 0; i < snapshot.mode_size(target); ++i) {
    index_t tuple[3] = {i, fixed[1], fixed[2]};
    all[static_cast<std::size_t>(i)] = saved.model.value_at(tuple);
  }
  std::vector<real_t> sorted = all;
  std::sort(sorted.rbegin(), sorted.rend());
  for (int i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(top[static_cast<std::size_t>(i)].score,
                     sorted[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(
        top[static_cast<std::size_t>(i)].score,
        all[static_cast<std::size_t>(top[static_cast<std::size_t>(i)].index)]);
    if (i > 0) {
      EXPECT_GE(top[static_cast<std::size_t>(i - 1)].score,
                top[static_cast<std::size_t>(i)].score);
    }
  }
}

TEST(FoldIn, RowIsFeasibleAndMatchesFromScratchSolve) {
  const SavedModel saved = make_saved_model();
  const ServableModel snapshot(saved, 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);

  const int mode = 1;
  const FoldInRequest req = make_request(snapshot, mode, 23);
  const FoldInResult result = engine.fold_in(snapshot, req);
  const index_t rank = snapshot.rank();
  ASSERT_EQ(result.row.size(), static_cast<std::size_t>(rank));
  for (real_t v : result.row) {
    EXPECT_GE(v, 0.0);  // non-negative constraint holds exactly
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(result.generation, 1u);

  // From scratch: rebuild the same subproblem with no serving caches and run
  // the trainer's full metered update (rho + Cholesky + inverse recomputed).
  Matrix s(rank, rank);
  s.set_all(1.0);
  for (int n = 0; n < snapshot.num_modes(); ++n) {
    if (n == mode) continue;
    Matrix g(rank, rank);
    la::gram(saved.model.factors[static_cast<std::size_t>(n)], g);
    la::hadamard_inplace(s, g);
  }
  for (index_t r = 0; r < rank; ++r) {
    for (index_t c = 0; c < rank; ++c) {
      s(r, c) *= saved.model.lambda[static_cast<std::size_t>(r)] *
                 saved.model.lambda[static_cast<std::size_t>(c)];
    }
  }
  Matrix m(1, rank);
  const auto width = static_cast<std::size_t>(snapshot.num_modes() - 1);
  for (std::size_t j = 0; j < req.values.size(); ++j) {
    const index_t* c = req.coords.data() + j * width;
    for (index_t r = 0; r < rank; ++r) {
      real_t term = req.values[j] * saved.model.lambda[static_cast<std::size_t>(r)];
      std::size_t pos = 0;
      for (int n = 0; n < snapshot.num_modes(); ++n) {
        if (n == mode) continue;
        term *= saved.model.factors[static_cast<std::size_t>(n)](c[pos++], r);
      }
      m(0, r) += term;
    }
  }
  AdmmOptions admm_options;
  admm_options.prox = saved.meta.prox();
  admm_options.inner_iterations = engine.options().inner_iterations;
  admm_options.tolerance = 0.0;
  AdmmUpdate admm(admm_options);
  simgpu::Device scratch_device(simgpu::a100());
  Matrix h(1, rank);
  ModeState state;
  admm.update(scratch_device, s, m, h, state);
  for (index_t r = 0; r < rank; ++r) {
    EXPECT_NEAR(result.row[static_cast<std::size_t>(r)], h(0, r), 1e-8);
  }
}

TEST(FoldIn, BatchRowsBitIdenticalToSingleRowSolves) {
  const ServableModel snapshot(make_saved_model(), 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);

  const int mode = 2;
  std::vector<FoldInRequest> reqs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    reqs.push_back(make_request(snapshot, mode, 100 + i));
  }
  const std::vector<FoldInResult> batched =
      engine.fold_in_batch(snapshot, reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const FoldInResult single = engine.fold_in(snapshot, reqs[i]);
    ASSERT_EQ(batched[i].row.size(), single.row.size());
    for (std::size_t r = 0; r < single.row.size(); ++r) {
      EXPECT_EQ(batched[i].row[r], single.row[r]);  // bit-identical
    }
  }
}

TEST(FoldIn, PerRequestPathMatchesCachedGramPath) {
  const ServableModel snapshot(make_saved_model(), 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine cached(runtime);
  FoldInOptions baseline_options;
  baseline_options.use_cached_gram = false;
  FoldInEngine baseline(runtime, baseline_options);

  const FoldInRequest req = make_request(snapshot, 0, 77);
  const FoldInResult fast = cached.fold_in(snapshot, req);
  const FoldInResult slow = baseline.fold_in(snapshot, req);
  ASSERT_EQ(fast.row.size(), slow.row.size());
  for (std::size_t r = 0; r < fast.row.size(); ++r) {
    EXPECT_NEAR(fast.row[r], slow.row[r], 1e-12);
  }
}

TEST(FoldIn, RejectsMalformedRequests) {
  const ServableModel snapshot(make_saved_model(), 1);
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);

  FoldInRequest bad_mode = make_request(snapshot, 0, 1);
  bad_mode.mode = 3;
  EXPECT_THROW(engine.fold_in(snapshot, bad_mode), Error);

  FoldInRequest bad_coord = make_request(snapshot, 0, 2);
  bad_coord.coords[0] = snapshot.mode_size(1);
  EXPECT_THROW(engine.fold_in(snapshot, bad_coord), Error);

  FoldInRequest empty;
  empty.mode = 0;
  EXPECT_THROW(engine.fold_in(snapshot, empty), Error);

  FoldInRequest mixed_a = make_request(snapshot, 0, 3);
  FoldInRequest mixed_b = make_request(snapshot, 1, 4);
  EXPECT_THROW(engine.fold_in_batch(snapshot, {mixed_a, mixed_b}), Error);
}

TEST(FoldInBatcher, ManualFlushIsDeterministic) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  FoldInBatcher batcher(engine, store, "test-model", options);

  const int mode = 1;
  std::vector<FoldInRequest> reqs;
  std::vector<std::future<FoldInResult>> futures;
  for (std::uint64_t i = 0; i < 6; ++i) {
    reqs.push_back(make_request(*store.get("test-model"), mode, 300 + i));
    futures.push_back(batcher.submit(reqs.back()));
  }
  // Nothing runs until flush in manual mode.
  EXPECT_EQ(futures.front().wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(batcher.flush(), 6u);
  EXPECT_EQ(batcher.batch_sizes().batches(), 1);
  EXPECT_EQ(batcher.batch_sizes().requests(), 6);
  EXPECT_DOUBLE_EQ(batcher.batch_sizes().mean_batch_size(), 6.0);

  // Batched-through-the-batcher equals a direct engine solve, bit for bit.
  FoldInEngine direct(runtime);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const FoldInResult via_batcher = futures[i].get();
    const FoldInResult expected =
        direct.fold_in(*store.get("test-model"), reqs[i]);
    EXPECT_EQ(via_batcher.row, expected.row);
  }
  EXPECT_EQ(batcher.latency().count(), 6);
}

TEST(FoldInBatcher, BackgroundCollectorServesSubmissions) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher batcher(engine, store, "test-model");

  std::vector<std::future<FoldInResult>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    futures.push_back(
        batcher.submit(make_request(*store.get("test-model"), 0, 400 + i)));
  }
  for (auto& f : futures) {
    const FoldInResult result = f.get();
    for (real_t v : result.row) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(batcher.batch_sizes().requests(), 8);
}

TEST(FoldInBatcher, FailsRequestsWhenModelMissing) {
  ModelStore store;  // deliberately empty
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  FoldInBatcher batcher(engine, store, "absent", options);

  SavedModel shape_donor = make_saved_model();
  const ServableModel shape(shape_donor, 1);
  std::future<FoldInResult> future =
      batcher.submit(make_request(shape, 0, 9));
  EXPECT_EQ(batcher.flush(), 0u);
  EXPECT_THROW(future.get(), Error);
}

TEST(FoldInBatcher, StopFailsQueuedRequests) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  FoldInBatcher batcher(engine, store, "test-model", options);
  std::future<FoldInResult> future =
      batcher.submit(make_request(*store.get("test-model"), 0, 1));
  batcher.stop();
  EXPECT_THROW(future.get(), Error);
  EXPECT_THROW(batcher.submit(make_request(*store.get("test-model"), 0, 2)),
               Error);
}

TEST(FoldInBatcher, ShedsWhenAdmissionQueueIsFull) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  options.max_queue = 2;
  FoldInBatcher batcher(engine, store, "test-model", options);

  const ServableModelPtr model = store.get("test-model");
  std::future<FoldInResult> a = batcher.submit(make_request(*model, 0, 1));
  std::future<FoldInResult> b = batcher.submit(make_request(*model, 0, 2));
  std::future<FoldInResult> c = batcher.submit(make_request(*model, 0, 3));

  EXPECT_THROW(c.get(), ShedError);  // over the bound: shed at admission
  EXPECT_EQ(batcher.flush(), 2u);    // the queue itself was protected
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(b.get());

  const ReliabilitySnapshot rel = batcher.reliability().snapshot();
  EXPECT_EQ(rel.submitted, 3);
  EXPECT_EQ(rel.shed, 1);
  EXPECT_EQ(rel.served, 2);
  EXPECT_EQ(rel.failed, 0);
}

TEST(FoldInBatcher, ExpiredDeadlineFailsWithDeadlineError) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  FoldInBatcher batcher(engine, store, "test-model", options);

  const ServableModelPtr model = store.get("test-model");
  FoldInRequest rushed = make_request(*model, 0, 1);
  rushed.timeout_s = 1e-6;
  std::future<FoldInResult> doomed = batcher.submit(std::move(rushed));
  std::future<FoldInResult> patient =
      batcher.submit(make_request(*model, 0, 2));  // no deadline

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(batcher.flush(), 1u);
  EXPECT_THROW(doomed.get(), DeadlineError);
  EXPECT_NO_THROW(patient.get());
  EXPECT_EQ(batcher.reliability().snapshot().timed_out, 1);
}

TEST(FoldInBatcher, TransientFaultIsRetriedInvisibly) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  simgpu::FaultPlan plan("launch:k=1");
  device.set_fault_plan(&plan);
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  options.retry_backoff_s = 0.0;
  FoldInBatcher batcher(engine, store, "test-model", options);

  const ServableModelPtr model = store.get("test-model");
  std::future<FoldInResult> a = batcher.submit(make_request(*model, 0, 1));
  std::future<FoldInResult> b = batcher.submit(make_request(*model, 0, 2));
  EXPECT_EQ(batcher.flush(), 2u);
  for (real_t v : a.get().row) EXPECT_TRUE(std::isfinite(v));
  for (real_t v : b.get().row) EXPECT_TRUE(std::isfinite(v));

  const ReliabilitySnapshot rel = batcher.reliability().snapshot();
  EXPECT_EQ(plan.injected(), 1);
  EXPECT_EQ(rel.retries, 1);
  EXPECT_EQ(rel.failed, 0);
  EXPECT_EQ(rel.served, 2);
}

TEST(FoldInBatcher, FatalFaultIsolatesRequestsInsteadOfFailingBatch) {
  ModelStore store;
  store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  // Fatal: the retry loop must NOT absorb it; the fused solve dies and the
  // batcher falls back to per-request isolation (the arm is spent by then).
  simgpu::FaultPlan plan("launch:k=1,fatal=1");
  device.set_fault_plan(&plan);
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  options.retry_backoff_s = 0.0;
  FoldInBatcher batcher(engine, store, "test-model", options);

  const ServableModelPtr model = store.get("test-model");
  std::future<FoldInResult> a = batcher.submit(make_request(*model, 0, 1));
  std::future<FoldInResult> b = batcher.submit(make_request(*model, 0, 2));
  EXPECT_EQ(batcher.flush(), 2u);
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(b.get());

  const ReliabilitySnapshot rel = batcher.reliability().snapshot();
  EXPECT_EQ(rel.retries, 0);  // fatal faults are never retried
  EXPECT_EQ(rel.degraded, 2);
  EXPECT_EQ(rel.failed, 0);
}

TEST(FoldInBatcher, ServesFromLastGoodSnapshotWhenModelVanishes) {
  ModelStore store;
  const ServableModelPtr published = store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  FoldInBatcher batcher(engine, store, "test-model", options);

  // One successful batch caches the snapshot.
  std::future<FoldInResult> warm =
      batcher.submit(make_request(*published, 0, 1));
  ASSERT_EQ(batcher.flush(), 1u);
  warm.get();

  // The model vanishes (unpublish / botched hot-swap): degraded mode keeps
  // serving against the cached generation instead of failing the batch.
  ASSERT_TRUE(store.erase("test-model"));
  std::future<FoldInResult> stale =
      batcher.submit(make_request(*published, 0, 2));
  EXPECT_EQ(batcher.flush(), 1u);
  const FoldInResult result = stale.get();
  EXPECT_EQ(result.generation, published->generation());
  EXPECT_EQ(batcher.reliability().snapshot().degraded, 1);
}

TEST(FoldInBatcher, DegradedFallbackCanBeDisabled) {
  ModelStore store;
  const ServableModelPtr published = store.publish(make_saved_model());
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  FoldInEngine engine(runtime);
  FoldInBatcher::Options options;
  options.background = false;
  options.degraded_fallback = false;
  FoldInBatcher batcher(engine, store, "test-model", options);

  std::future<FoldInResult> warm =
      batcher.submit(make_request(*published, 0, 1));
  ASSERT_EQ(batcher.flush(), 1u);
  warm.get();

  ASSERT_TRUE(store.erase("test-model"));
  std::future<FoldInResult> strict =
      batcher.submit(make_request(*published, 0, 2));
  EXPECT_EQ(batcher.flush(), 0u);
  EXPECT_THROW(strict.get(), Error);
  EXPECT_EQ(batcher.reliability().snapshot().failed, 1);
}

TEST(ModelStore, HotSwapUnderConcurrentServingLoad) {
  ModelStore store;
  store.publish(make_saved_model(1));
  simgpu::Device device(simgpu::a100());
  ServeRuntime runtime(device, global_pool());
  QueryEngine queries(runtime);
  FoldInEngine fold_ins(runtime);

  constexpr int kSwaps = 12;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> max_seen_generation{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 900);
      std::uint64_t last_generation = 0;
      while (!done.load(std::memory_order_relaxed)) {
        ServableModelPtr snapshot = store.get("test-model");
        if (snapshot == nullptr) { failures.fetch_add(1); return; }
        // Generations must be monotone per thread: a swap never goes back.
        if (snapshot->generation() < last_generation) failures.fetch_add(1);
        last_generation = snapshot->generation();
        try {
          if (t % 2 == 0) {
            std::vector<index_t> coords;
            for (int m = 0; m < snapshot->num_modes(); ++m) {
              coords.push_back(static_cast<index_t>(rng.uniform_index(
                  static_cast<std::uint64_t>(snapshot->mode_size(m)))));
            }
            for (real_t v : queries.predict(*snapshot, coords)) {
              if (!std::isfinite(v)) failures.fetch_add(1);
            }
          } else {
            const FoldInResult result = fold_ins.fold_in(
                *snapshot, make_request(*snapshot, 0, rng()));
            if (result.generation != snapshot->generation()) {
              failures.fetch_add(1);
            }
          }
        } catch (const Error&) {
          failures.fetch_add(1);
        }
        std::uint64_t seen = max_seen_generation.load();
        while (last_generation > seen &&
               !max_seen_generation.compare_exchange_weak(seen,
                                                          last_generation)) {
        }
      }
    });
  }

  for (int swap = 0; swap < kSwaps; ++swap) {
    store.publish(make_saved_model(static_cast<std::uint64_t>(swap) + 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true);
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.generation(), static_cast<std::uint64_t>(kSwaps) + 1);
  // The workers actually observed swapped-in snapshots, not just the first.
  EXPECT_GT(max_seen_generation.load(), 1u);
}

TEST(ServeStats, LatencyQuantilesAreNearestRank) {
  LatencyRecorder recorder;
  for (int i = 100; i >= 1; --i) {  // insertion order must not matter
    recorder.record(static_cast<double>(i) * 1e-3);
  }
  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.p50_s, 0.050);
  EXPECT_DOUBLE_EQ(s.p95_s, 0.095);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.099);
  EXPECT_DOUBLE_EQ(s.max_s, 0.100);
  EXPECT_NEAR(s.mean_s, 0.0505, 1e-12);
  EXPECT_DOUBLE_EQ(recorder.quantile(1.0), 0.100);
  recorder.clear();
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_EQ(recorder.summary().count, 0);
}

TEST(ServeStats, BatchSizeRecorderAggregates) {
  BatchSizeRecorder recorder;
  recorder.record(2);
  recorder.record(4);
  recorder.record(4);
  EXPECT_EQ(recorder.batches(), 3);
  EXPECT_EQ(recorder.requests(), 10);
  EXPECT_NEAR(recorder.mean_batch_size(), 10.0 / 3.0, 1e-12);
  const auto histogram = recorder.histogram();
  EXPECT_EQ(histogram.at(2), 1);
  EXPECT_EQ(histogram.at(4), 2);
  recorder.clear();
  EXPECT_EQ(recorder.batches(), 0);
  EXPECT_EQ(recorder.mean_batch_size(), 0.0);
}

}  // namespace
}  // namespace cstf::serve
