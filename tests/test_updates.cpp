// Unit and property tests for the constrained update algorithms: proximity
// operators, ADMM in all four OF/PI configurations, blocked ADMM, MU, HALS,
// unconstrained ALS.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "common/error.hpp"
#include "updates/admm.hpp"
#include "updates/admm_kernels.hpp"
#include "updates/als.hpp"
#include "updates/block_admm.hpp"
#include "updates/bpp.hpp"
#include "updates/bpp.hpp"
#include "updates/hals.hpp"
#include "updates/mu.hpp"

namespace cstf {
namespace {

// Builds a synthetic constrained least-squares instance: S = G^T G + I
// (SPD), M = H_true * S with non-negative H_true, so the unconstrained and
// non-negative optima coincide at H_true.
struct Instance {
  Matrix s, m, h_true;
};

Instance make_instance(index_t i_len, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  Matrix g(2 * rank, rank);
  g.fill_normal(rng);
  inst.s.resize(rank, rank);
  la::gram(g, inst.s);
  la::add_diagonal(inst.s, 1.0);
  inst.h_true.resize(i_len, rank);
  inst.h_true.fill_uniform(rng, 0.0, 1.0);
  inst.m.resize(i_len, rank);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, inst.h_true, inst.s, 0.0, inst.m);
  return inst;
}

// MU is a true NMF method: it requires elementwise non-negative S and M
// (which cSTF guarantees — non-negative data and factors). This variant
// plants a fully non-negative instance.
Instance make_nonneg_instance(index_t i_len, index_t rank, std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  Matrix g(2 * rank, rank);
  g.fill_uniform(rng, 0.0, 1.0);
  inst.s.resize(rank, rank);
  la::gram(g, inst.s);
  la::add_diagonal(inst.s, 1.0);
  inst.h_true.resize(i_len, rank);
  inst.h_true.fill_uniform(rng, 0.0, 1.0);
  inst.m.resize(i_len, rank);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, inst.h_true, inst.s, 0.0, inst.m);
  return inst;
}

// Quadratic objective f(H) = 0.5*tr(H S H^T) - tr(H M^T); the quantity every
// update method is descending (up to its constraint).
real_t objective(const Matrix& s, const Matrix& m, const Matrix& h) {
  Matrix hs(h.rows(), h.cols());
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, h, s, 0.0, hs);
  real_t quad = 0.0, lin = 0.0;
  for (index_t i = 0; i < h.size(); ++i) {
    quad += h.data()[i] * hs.data()[i];
    lin += h.data()[i] * m.data()[i];
  }
  return 0.5 * quad - lin;
}

TEST(Prox, NonNegativeClampsNegatives) {
  const Proximity p = Proximity::non_negative();
  EXPECT_DOUBLE_EQ(p.apply_scalar(-2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(3.0, 1.0), 3.0);
  EXPECT_TRUE(p.elementwise());
}

TEST(Prox, L1SoftThresholds) {
  const Proximity p = Proximity::l1(2.0);
  // threshold = lambda * rho_scale = 2 * 0.5 = 1.
  EXPECT_DOUBLE_EQ(p.apply_scalar(3.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(-3.0, 0.5), -2.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(0.5, 0.5), 0.0);
}

TEST(Prox, L1NonNegativeCombines) {
  const Proximity p = Proximity::l1_non_negative(1.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(-3.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(0.5, 1.0), 0.0);
}

TEST(Prox, BoxClamps) {
  const Proximity p = Proximity::box(-1.0, 2.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(-5.0, 1.0), -1.0);
  EXPECT_DOUBLE_EQ(p.apply_scalar(1.5, 1.0), 1.5);
  EXPECT_DOUBLE_EQ(p.apply_scalar(9.0, 1.0), 2.0);
}

TEST(Prox, L2BallProjectsColumns) {
  const Proximity p = Proximity::l2_ball(1.0);
  EXPECT_FALSE(p.elementwise());
  Matrix h = Matrix::from_rows({{3.0, 0.1}, {4.0, 0.2}});
  p.apply(h, 1.0);
  EXPECT_NEAR(la::nrm2(2, h.col(0)), 1.0, 1e-12);
  // Column already inside the ball is untouched.
  EXPECT_DOUBLE_EQ(h(0, 1), 0.1);
  EXPECT_TRUE(p.is_feasible(h, 1e-9));
}

TEST(Prox, FeasibilityOracle) {
  const Proximity nn = Proximity::non_negative();
  Matrix ok = Matrix::from_rows({{0.0, 1.0}});
  Matrix bad = Matrix::from_rows({{-0.5, 1.0}});
  EXPECT_TRUE(nn.is_feasible(ok));
  EXPECT_FALSE(nn.is_feasible(bad));
}

TEST(Prox, SimplexProjectionSumsToOneAndIsNonNegative) {
  const Proximity p = Proximity::simplex();
  EXPECT_FALSE(p.elementwise());
  Rng rng(41);
  Matrix h(50, 4);
  h.fill_normal(rng, 0.0, 3.0);
  p.apply(h, 1.0);
  EXPECT_TRUE(p.is_feasible(h, 1e-9));
  for (index_t j = 0; j < 4; ++j) {
    real_t sum = 0.0;
    for (index_t i = 0; i < 50; ++i) {
      EXPECT_GE(h(i, j), 0.0);
      sum += h(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Prox, SimplexIsIdentityOnSimplexPoints) {
  const Proximity p = Proximity::simplex();
  Matrix h = Matrix::from_rows({{0.2}, {0.3}, {0.5}});
  Matrix before = h;
  p.apply(h, 1.0);
  EXPECT_LT(max_abs_diff(h, before), 1e-12);
}

TEST(Prox, SimplexProjectionIsClosestPoint) {
  // For v = (2, 0), the projection onto the simplex is (1, 0).
  const Proximity p = Proximity::simplex();
  Matrix h = Matrix::from_rows({{2.0}, {0.0}});
  p.apply(h, 1.0);
  EXPECT_NEAR(h(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(h(1, 0), 0.0, 1e-12);
}

TEST(Prox, SmoothSolvesTheTridiagonalSystemExactly) {
  // Verify (I + lambda D^T D) x == v after the prox.
  const real_t lambda = 0.7;
  const Proximity p = Proximity::smooth(lambda);
  EXPECT_FALSE(p.elementwise());
  Rng rng(42);
  const index_t n = 40;
  Matrix v(n, 2);
  v.fill_normal(rng);
  Matrix x = v;
  p.apply(x, 1.0);
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < n; ++i) {
      real_t lhs = x(i, j);
      // D^T D row: 2x_i - x_{i-1} - x_{i+1} with free boundaries.
      real_t dtd = 0.0;
      if (i > 0) dtd += x(i, j) - x(i - 1, j);
      if (i < n - 1) dtd += x(i, j) - x(i + 1, j);
      lhs += lambda * dtd;
      EXPECT_NEAR(lhs, v(i, j), 1e-10) << "row " << i;
    }
  }
}

TEST(Prox, SmoothReducesTotalVariation) {
  const Proximity p = Proximity::smooth(5.0);
  Rng rng(43);
  Matrix h(100, 1);
  h.fill_normal(rng);
  auto variation = [&](const Matrix& m) {
    real_t tv = 0.0;
    for (index_t i = 1; i < m.rows(); ++i) {
      const real_t d = m(i, 0) - m(i - 1, 0);
      tv += d * d;
    }
    return tv;
  };
  const real_t before = variation(h);
  p.apply(h, 1.0);
  EXPECT_LT(variation(h), 0.2 * before);
}

TEST(Prox, SmoothPreservesColumnMean) {
  // (I + lambda D^T D) has row sums 1 outside... the all-ones vector is in
  // D's null space, so the smoothing operator preserves the mean exactly.
  const Proximity p = Proximity::smooth(2.0);
  Rng rng(44);
  Matrix h(64, 1);
  h.fill_uniform(rng, -1.0, 1.0);
  real_t mean_before = 0.0;
  for (index_t i = 0; i < 64; ++i) mean_before += h(i, 0);
  p.apply(h, 1.0);
  real_t mean_after = 0.0;
  for (index_t i = 0; i < 64; ++i) mean_after += h(i, 0);
  EXPECT_NEAR(mean_after, mean_before, 1e-9);
}

TEST(Admm, SimplexConstrainedUpdateStaysOnSimplex) {
  const Instance inst = make_nonneg_instance(60, 4, 45);
  AdmmOptions opt;
  opt.prox = Proximity::simplex();
  opt.inner_iterations = 20;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(60, 4);
  Rng rng(46);
  h.fill_uniform(rng, 0.0, 1.0);
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  EXPECT_TRUE(opt.prox.is_feasible(h, 1e-6));
}

TEST(Admm, SmoothRegularizedUpdateIsSmootherThanUnregularized) {
  const Instance inst = make_instance(200, 4, 47);
  auto run = [&](Proximity prox) {
    AdmmOptions opt;
    opt.prox = prox;
    opt.inner_iterations = 30;
    AdmmUpdate admm(opt);
    simgpu::Device dev(simgpu::a100());
    Matrix h(200, 4);
    Rng rng(48);
    h.fill_uniform(rng, 0.0, 1.0);
    ModeState state;
    admm.update(dev, inst.s, inst.m, h, state);
    real_t tv = 0.0;
    for (index_t j = 0; j < 4; ++j) {
      for (index_t i = 1; i < 200; ++i) {
        const real_t d = h(i, j) - h(i - 1, j);
        tv += d * d;
      }
    }
    return tv;
  };
  EXPECT_LT(run(Proximity::smooth(20.0)), run(Proximity::identity()));
}

struct AdmmConfig {
  bool fusion;
  bool preinversion;
};

class AdmmConfigSweep : public ::testing::TestWithParam<AdmmConfig> {};

TEST_P(AdmmConfigSweep, RecoversUnconstrainedOptimumWhenFeasible) {
  // M = H_true * S with H_true >= 0: the non-negative LS optimum is H_true.
  const Instance inst = make_instance(200, 8, 1);
  AdmmOptions opt;
  opt.prox = Proximity::non_negative();
  opt.inner_iterations = 60;
  opt.operation_fusion = GetParam().fusion;
  opt.preinversion = GetParam().preinversion;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(200, 8);
  Rng rng(2);
  h.fill_uniform(rng, 0.0, 1.0);
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(max_abs_diff(h, inst.h_true), 1e-4);
  EXPECT_TRUE(opt.prox.is_feasible(h));
}

TEST_P(AdmmConfigSweep, OutputFeasibleForL1NonNegative) {
  const Instance inst = make_instance(100, 6, 3);
  AdmmOptions opt;
  opt.prox = Proximity::l1_non_negative(0.5);
  opt.inner_iterations = 10;
  opt.operation_fusion = GetParam().fusion;
  opt.preinversion = GetParam().preinversion;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(100, 6);
  Rng rng(4);
  h.fill_normal(rng);  // start infeasible
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  EXPECT_TRUE(opt.prox.is_feasible(h));
}

TEST_P(AdmmConfigSweep, DecreasesObjectiveFromColdStart) {
  const Instance inst = make_instance(300, 12, 5);
  AdmmOptions opt;
  opt.prox = Proximity::non_negative();
  opt.inner_iterations = 10;
  opt.operation_fusion = GetParam().fusion;
  opt.preinversion = GetParam().preinversion;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::h100());
  Matrix h(300, 12);
  Rng rng(6);
  h.fill_uniform(rng, 0.0, 1.0);
  const real_t before = objective(inst.s, inst.m, h);
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(objective(inst.s, inst.m, h), before);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AdmmConfigSweep,
    ::testing::Values(AdmmConfig{false, false}, AdmmConfig{true, false},
                      AdmmConfig{false, true}, AdmmConfig{true, true}),
    [](const auto& name_info) {
      return std::string(name_info.param.fusion ? "OF" : "noOF") +
             (name_info.param.preinversion ? "_PI" : "_noPI");
    });

// Regression: kernel_apply_proximity used to fall back silently to
// inv_rho = 1 on rho <= 0, letting the fused path scale the prox differently
// from the unfused BLAS chain. The clamp lives in AdmmUpdate::update; the
// kernels must reject a non-positive rho outright.
TEST(AdmmKernels, NonPositiveRhoThrows) {
  simgpu::Device dev(simgpu::a100());
  Matrix m(6, 3), h(6, 3), u(6, 3), t(6, 3);
  real_t delta = 0.0;
  EXPECT_THROW(kernel_apply_proximity(dev, Proximity::non_negative(), 0.0, t,
                                      u, h, &delta),
               Error);
  EXPECT_THROW(kernel_apply_proximity(dev, Proximity::non_negative(), -2.0, t,
                                      u, h, &delta),
               Error);
  EXPECT_THROW(kernel_compute_auxiliary(dev, m, h, u, 0.0, t), Error);
}

// Degenerate rho (all-zero S → trace 0) goes through the centralized clamp,
// and the fused/unfused paths must agree on the clamped problem.
TEST(Admm, DegenerateRhoClampedConsistentlyAcrossPaths) {
  const index_t i_len = 40, rank = 5;
  Matrix s(rank, rank);  // all zeros: trace(S)/R = 0, clamp kicks in
  Rng rng(17);
  Matrix m(i_len, rank);
  m.fill_uniform(rng, -1.0, 1.0);
  Matrix h0(i_len, rank);
  h0.fill_uniform(rng, 0.0, 1.0);

  Matrix results[2];
  int idx = 0;
  for (bool fusion : {false, true}) {
    AdmmOptions opt;
    opt.prox = Proximity::non_negative();
    opt.inner_iterations = 5;
    opt.operation_fusion = fusion;
    AdmmUpdate admm(opt);
    simgpu::Device dev(simgpu::a100());
    Matrix h = h0;
    ModeState state;
    EXPECT_NO_THROW(admm.update(dev, s, m, h, state));
    EXPECT_DOUBLE_EQ(admm.last().rho, 1.0);  // the documented clamp value
    results[idx++] = std::move(h);
  }
  EXPECT_LT(max_abs_diff(results[0], results[1]), 1e-9);
}

TEST(Admm, AllFourConfigurationsAgreeNumerically) {
  // OF and PI are performance transformations; the math is identical, so all
  // four variants must produce (near-)identical iterates.
  const Instance inst = make_instance(150, 10, 7);
  Matrix h0(150, 10);
  Rng rng(8);
  h0.fill_uniform(rng, 0.0, 1.0);

  Matrix results[4];
  int idx = 0;
  for (bool fusion : {false, true}) {
    for (bool pi : {false, true}) {
      AdmmOptions opt;
      opt.prox = Proximity::non_negative();
      opt.inner_iterations = 10;
      opt.operation_fusion = fusion;
      opt.preinversion = pi;
      AdmmUpdate admm(opt);
      simgpu::Device dev(simgpu::a100());
      Matrix h = h0;
      ModeState state;
      admm.update(dev, inst.s, inst.m, h, state);
      results[idx++] = std::move(h);
    }
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_LT(max_abs_diff(results[0], results[i]), 1e-9) << "config " << i;
  }
}

TEST(Admm, FusedPathIssuesFewerBytesThanUnfused) {
  // The Figure-4 mechanism: same math, less traffic.
  const Instance inst = make_instance(2000, 32, 9);
  Matrix h0(2000, 32);
  Rng rng(10);
  h0.fill_uniform(rng, 0.0, 1.0);

  auto run_traffic = [&](bool fusion, bool pi) {
    AdmmOptions opt;
    opt.prox = Proximity::non_negative();
    opt.inner_iterations = 10;
    opt.operation_fusion = fusion;
    opt.preinversion = pi;
    AdmmUpdate admm(opt);
    simgpu::Device dev(simgpu::a100());
    Matrix h = h0;
    ModeState state;
    admm.update(dev, inst.s, inst.m, h, state);
    return dev.total().total_bytes();
  };

  EXPECT_LT(run_traffic(true, false), run_traffic(false, false));
  EXPECT_LT(run_traffic(true, true), run_traffic(false, true));
}

TEST(Admm, PreinversionReplacesTriangularSolvesWithGemm) {
  const Instance inst = make_instance(500, 16, 11);
  Matrix h0(500, 16);
  Rng rng(12);
  h0.fill_uniform(rng, 0.0, 1.0);

  auto kernels = [&](bool pi) {
    AdmmOptions opt;
    opt.inner_iterations = 3;
    opt.operation_fusion = true;
    opt.preinversion = pi;
    AdmmUpdate admm(opt);
    simgpu::Device dev(simgpu::a100());
    Matrix h = h0;
    ModeState state;
    admm.update(dev, inst.s, inst.m, h, state);
    return dev.per_kernel();
  };

  const auto with_pi = kernels(true);
  EXPECT_TRUE(with_pi.count("dgemm"));
  EXPECT_FALSE(with_pi.count("dpotrs_right"));
  EXPECT_TRUE(with_pi.count("dpotri"));
  const auto without_pi = kernels(false);
  EXPECT_TRUE(without_pi.count("dpotrs_right"));
  EXPECT_FALSE(without_pi.count("dpotri"));
}

TEST(Admm, EarlyExitHonorsTolerance) {
  const Instance inst = make_instance(100, 4, 13);
  AdmmOptions opt;
  opt.inner_iterations = 200;
  opt.tolerance = 1e-8;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(100, 4);
  Rng rng(14);
  h.fill_uniform(rng, 0.0, 1.0);
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(admm.last().iterations, 200);
  EXPECT_LT(admm.last().primal_residual, 1e-8);
}

TEST(Admm, DualVariableWarmStartsAcrossCalls) {
  const Instance inst = make_instance(50, 4, 15);
  AdmmOptions opt;
  opt.inner_iterations = 5;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(50, 4);
  Rng rng(16);
  h.fill_uniform(rng, 0.0, 1.0);
  ModeState state;
  admm.update(dev, inst.s, inst.m, h, state);
  const Matrix dual_after_first = state.dual;
  EXPECT_GT(la::frobenius_norm(dual_after_first), 0.0);
  admm.update(dev, inst.s, inst.m, h, state);
  // Dual evolves from, not resets to, its previous value.
  EXPECT_TRUE(state.dual.same_shape(dual_after_first));
}

class BlockAdmmBlockSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(BlockAdmmBlockSizes, MatchesUnblockedAdmmExactly) {
  // Rows are independent given S, so blocking must not change the math at
  // all — any block size yields the same iterates as the unfused ADMM.
  const Instance inst = make_instance(257, 8, 17);
  Matrix h0(257, 8);
  Rng rng(18);
  h0.fill_uniform(rng, 0.0, 1.0);

  AdmmOptions ref_opt;
  ref_opt.prox = Proximity::non_negative();
  ref_opt.inner_iterations = 10;
  ref_opt.operation_fusion = false;
  ref_opt.preinversion = false;
  AdmmUpdate ref(ref_opt);
  simgpu::Device dev_a(simgpu::xeon_8367hc());
  Matrix h_ref = h0;
  ModeState state_ref;
  ref.update(dev_a, inst.s, inst.m, h_ref, state_ref);

  BlockAdmmOptions blk_opt;
  blk_opt.prox = Proximity::non_negative();
  blk_opt.inner_iterations = 10;
  blk_opt.block_rows = GetParam();
  BlockAdmmUpdate blocked(blk_opt);
  simgpu::Device dev_b(simgpu::xeon_8367hc());
  Matrix h_blk = h0;
  ModeState state_blk;
  blocked.update(dev_b, inst.s, inst.m, h_blk, state_blk);

  EXPECT_LT(max_abs_diff(h_ref, h_blk), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockAdmmBlockSizes,
                         ::testing::Values<index_t>(1, 7, 64, 257, 4096));

TEST(Mu, PreservesNonNegativityAndDescends) {
  const Instance inst = make_nonneg_instance(120, 8, 19);
  MuUpdate mu;
  simgpu::Device dev(simgpu::a100());
  Matrix h(120, 8);
  Rng rng(20);
  h.fill_uniform(rng, 0.1, 1.0);
  ModeState state;
  real_t prev = objective(inst.s, inst.m, h);
  for (int sweep = 0; sweep < 5; ++sweep) {
    mu.update(dev, inst.s, inst.m, h, state);
    const real_t now = objective(inst.s, inst.m, h);
    EXPECT_LE(now, prev + 1e-9) << "sweep " << sweep;
    prev = now;
  }
  EXPECT_TRUE(Proximity::non_negative().is_feasible(h));
}

TEST(Mu, FixedPointAtExactSolution) {
  const Instance inst = make_nonneg_instance(60, 5, 21);
  MuUpdate mu;
  simgpu::Device dev(simgpu::a100());
  Matrix h = inst.h_true;
  ModeState state;
  mu.update(dev, inst.s, inst.m, h, state);
  // At H_true, M ./ (H S) == 1 elementwise wherever H > 0.
  EXPECT_LT(max_abs_diff(h, inst.h_true), 1e-9);
}

TEST(Hals, PreservesNonNegativityAndDescends) {
  const Instance inst = make_instance(120, 8, 22);
  HalsUpdate hals;
  simgpu::Device dev(simgpu::a100());
  Matrix h(120, 8);
  Rng rng(23);
  h.fill_uniform(rng, 0.1, 1.0);
  ModeState state;
  real_t prev = objective(inst.s, inst.m, h);
  for (int sweep = 0; sweep < 5; ++sweep) {
    hals.update(dev, inst.s, inst.m, h, state);
    const real_t now = objective(inst.s, inst.m, h);
    EXPECT_LE(now, prev + 1e-9) << "sweep " << sweep;
    prev = now;
  }
  for (index_t i = 0; i < h.size(); ++i) EXPECT_GT(h.data()[i], 0.0);
}

TEST(Hals, ConvergesToOptimumWithEnoughSweeps) {
  const Instance inst = make_instance(80, 6, 24);
  HalsOptions opt;
  opt.inner_iterations = 100;
  HalsUpdate hals(opt);
  simgpu::Device dev(simgpu::a100());
  Matrix h(80, 6);
  Rng rng(25);
  h.fill_uniform(rng, 0.1, 1.0);
  ModeState state;
  hals.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(max_abs_diff(h, inst.h_true), 1e-6);
}

TEST(Bpp, MatchesUnconstrainedSolutionWhenInterior) {
  // M = H_true * S with H_true > 0: the NNLS optimum is the unconstrained
  // one, and BPP must hit it exactly.
  const Instance inst = make_instance(80, 6, 61);
  BppUpdate bpp;
  simgpu::Device dev(simgpu::a100());
  Matrix h(80, 6);
  ModeState state;
  bpp.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(max_abs_diff(h, inst.h_true), 1e-9);
}

TEST(Bpp, SatisfiesKktConditionsWithActiveConstraints) {
  // Signed optimum forces a non-trivial active set; verify primal/dual KKT.
  Rng rng(62);
  Matrix g(12, 6);
  g.fill_normal(rng);
  Matrix s(6, 6);
  la::gram(g, s);
  la::add_diagonal(s, 1.0);
  Matrix h_signed(50, 6);
  h_signed.fill_normal(rng);
  Matrix m(50, 6);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, h_signed, s, 0.0, m);

  BppUpdate bpp;
  simgpu::Device dev(simgpu::a100());
  Matrix h(50, 6);
  ModeState state;
  bpp.update(dev, s, m, h, state);

  index_t active = 0;
  for (index_t i = 0; i < 50; ++i) {
    for (index_t r = 0; r < 6; ++r) {
      // Primal feasibility.
      ASSERT_GE(h(i, r), 0.0);
      // Dual: y = (H S - M) row-wise; y >= 0 where x == 0, |y| ~ 0 where
      // x > 0 (complementary slackness).
      real_t y = -m(i, r);
      for (index_t k = 0; k < 6; ++k) y += s(r, k) * h(i, k);
      if (h(i, r) > 1e-10) {
        EXPECT_NEAR(y, 0.0, 1e-8) << "row " << i << " col " << r;
      } else {
        EXPECT_GE(y, -1e-8) << "row " << i << " col " << r;
        ++active;
      }
    }
  }
  EXPECT_GT(active, 0);  // the instance must actually clamp something
}

TEST(Bpp, IsTheOracleAdmmConvergesTo) {
  // Run ADMM to (near-)convergence and compare against BPP's exact answer.
  const Instance inst = make_instance(60, 5, 63);
  Rng rng(64);
  Matrix m_hard(60, 5);
  Matrix h_signed(60, 5);
  h_signed.fill_normal(rng);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, h_signed, inst.s, 0.0, m_hard);

  BppUpdate bpp;
  simgpu::Device dev(simgpu::a100());
  Matrix h_exact(60, 5);
  ModeState st1;
  bpp.update(dev, inst.s, m_hard, h_exact, st1);

  AdmmOptions opt;
  opt.inner_iterations = 3000;
  opt.tolerance = 1e-14;
  AdmmUpdate admm(opt);
  Matrix h_admm(60, 5);
  Rng rng2(65);
  h_admm.fill_uniform(rng2, 0.0, 1.0);
  ModeState st2;
  admm.update(dev, inst.s, m_hard, h_admm, st2);

  EXPECT_LT(max_abs_diff(h_admm, h_exact), 1e-4);
  // And BPP's objective is never worse.
  EXPECT_LE(objective(inst.s, m_hard, h_exact),
            objective(inst.s, m_hard, h_admm) + 1e-9);
}

TEST(Bpp, ZeroMttkrpGivesZeroSolution) {
  const Instance inst = make_nonneg_instance(20, 4, 66);
  Matrix m_zero(20, 4);
  BppUpdate bpp;
  simgpu::Device dev(simgpu::a100());
  Matrix h(20, 4);
  ModeState state;
  bpp.update(dev, inst.s, m_zero, h, state);
  EXPECT_LT(la::frobenius_norm(h), 1e-12);
}

TEST(Als, SolvesTheNormalEquationsExactly) {
  const Instance inst = make_instance(90, 7, 26);
  AlsUpdate als;
  simgpu::Device dev(simgpu::a100());
  Matrix h(90, 7);  // ALS ignores the start
  ModeState state;
  als.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(max_abs_diff(h, inst.h_true), 1e-8);
}

TEST(Als, HandlesNegativeOptimum) {
  // Without constraints the solver must follow M wherever it leads.
  Instance inst = make_instance(40, 4, 27);
  Rng rng(28);
  Matrix h_signed(40, 4);
  h_signed.fill_normal(rng);
  la::gemm(la::Op::kNone, la::Op::kNone, 1.0, h_signed, inst.s, 0.0, inst.m);
  AlsUpdate als;
  simgpu::Device dev(simgpu::a100());
  Matrix h(40, 4);
  ModeState state;
  als.update(dev, inst.s, inst.m, h, state);
  EXPECT_LT(max_abs_diff(h, h_signed), 1e-8);
}

}  // namespace
}  // namespace cstf
