// Checkpoint/resume tests: CSTFCKPT round trip, bit-identical resume
// (including the ADMM dual state), corruption handling, and recovery from an
// injected mid-training fault.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <vector>

#include "cstf/checkpoint.hpp"
#include "cstf/framework.hpp"
#include "simgpu/fault.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor make_tensor(std::uint64_t seed = 1) {
  LowRankTensorParams params;
  params.dims = {14, 11, 9};
  params.rank = 3;
  params.target_nnz = 14 * 11 * 9;
  params.noise = 0.01;
  params.seed = seed;
  return generate_low_rank(params).tensor;
}

FrameworkOptions base_options() {
  FrameworkOptions options;
  options.rank = 4;
  options.max_iterations = 10;
  options.fit_tolerance = 0.0;  // fixed iteration count
  options.scheme = UpdateScheme::kCuAdmm;
  // Bit-identity across runs requires atomic-free scatter: the atomic path's
  // accumulation order depends on thread scheduling.
  options.scatter.deterministic = true;
  return options;
}

void expect_bitwise_equal(const KTensor& a, const KTensor& b) {
  ASSERT_EQ(a.num_modes(), b.num_modes());
  ASSERT_EQ(a.lambda.size(), b.lambda.size());
  EXPECT_EQ(std::memcmp(a.lambda.data(), b.lambda.data(),
                        a.lambda.size() * sizeof(real_t)),
            0);
  for (int m = 0; m < a.num_modes(); ++m) {
    const Matrix& fa = a.factors[static_cast<std::size_t>(m)];
    const Matrix& fb = b.factors[static_cast<std::size_t>(m)];
    ASSERT_EQ(fa.rows(), fb.rows());
    ASSERT_EQ(fa.cols(), fb.cols());
    EXPECT_EQ(std::memcmp(fa.data(), fb.data(),
                          static_cast<std::size_t>(fa.size()) * sizeof(real_t)),
              0)
        << "mode " << m << " factors differ bitwise";
  }
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ModelIoStatus load_status(const std::string& path) {
  try {
    load_checkpoint(path);
  } catch (const ModelIoError& e) {
    return e.status();
  }
  ADD_FAILURE() << "load_checkpoint(" << path << ") unexpectedly succeeded";
  return ModelIoStatus::kOpenFailed;
}

TEST(Checkpoint, RoundTripPreservesTrainingState) {
  const SparseTensor tensor = make_tensor();
  FrameworkOptions options = base_options();
  options.max_iterations = 5;
  CstfFramework framework(tensor, options);
  framework.run();

  const std::string path = ::testing::TempDir() + "/roundtrip.ckpt";
  framework.write_checkpoint(path);
  const TrainingCheckpoint loaded = load_checkpoint(path);

  EXPECT_EQ(loaded.state.completed_iterations, 5);
  EXPECT_EQ(loaded.seed, options.seed);
  EXPECT_EQ(loaded.options_digest, digest_training_options(options));
  EXPECT_EQ(loaded.state.fit_history.size(), 5u);
  ASSERT_EQ(loaded.state.factors.size(), 3u);
  ASSERT_EQ(loaded.state.duals.size(), 3u);
  for (const Matrix& dual : loaded.state.duals) {
    EXPECT_GT(dual.size(), 0);  // ADMM duals are part of the snapshot
  }

  const KTensor model = framework.ktensor();
  const TrainerState& state = loaded.state;
  for (int m = 0; m < model.num_modes(); ++m) {
    const Matrix& fa = model.factors[static_cast<std::size_t>(m)];
    const Matrix& fb = state.factors[static_cast<std::size_t>(m)];
    ASSERT_EQ(fa.rows(), fb.rows());
    EXPECT_EQ(std::memcmp(fa.data(), fb.data(),
                          static_cast<std::size_t>(fa.size()) * sizeof(real_t)),
              0);
  }
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const SparseTensor tensor = make_tensor();
  const std::string path = ::testing::TempDir() + "/resume.ckpt";

  // Reference: 10 uninterrupted iterations.
  FrameworkOptions options = base_options();
  CstfFramework uninterrupted(tensor, options);
  const AuntfResult full = uninterrupted.run();
  ASSERT_EQ(full.iterations, 10);

  // "Killed" run: checkpoint every 4, stop after 4 (the kill).
  FrameworkOptions first_leg = options;
  first_leg.max_iterations = 4;
  first_leg.checkpoint_every = 4;
  first_leg.checkpoint_path = path;
  CstfFramework killed(tensor, first_leg);
  killed.run();

  // Resume in a fresh framework (fresh process in real life) for the
  // remaining 6 iterations.
  FrameworkOptions second_leg = options;
  second_leg.resume_from = path;
  CstfFramework resumed(tensor, second_leg);
  const AuntfResult rest = resumed.run();

  EXPECT_EQ(rest.iterations, 10);  // counter carries across the resume
  expect_bitwise_equal(uninterrupted.ktensor(), resumed.ktensor());
  // Fit history stitches seamlessly: same values in both timelines.
  ASSERT_EQ(rest.fit_history.size(), full.fit_history.size());
  for (std::size_t i = 0; i < full.fit_history.size(); ++i) {
    EXPECT_EQ(rest.fit_history[i], full.fit_history[i]) << "iteration " << i;
  }
}

TEST(Checkpoint, InjectedFaultMidTrainingThenResumeMatches) {
  const SparseTensor tensor = make_tensor();
  const std::string path = ::testing::TempDir() + "/chaos.ckpt";
  FrameworkOptions options = base_options();

  // Reference run; count its launches so the fault can be planted at ~70%
  // of the way through (past several checkpoint boundaries).
  CstfFramework reference(tensor, options);
  simgpu::FaultPlan counter("launch:k=999999999");  // never fires
  reference.device().set_fault_plan(&counter);
  reference.run();
  const std::int64_t launches =
      counter.seen(simgpu::FaultSite::kKernelLaunch);
  ASSERT_GT(launches, 100);

  // Crashing run: checkpoints every 2 iterations, fault at 70% of the
  // launch budget.
  FrameworkOptions crashing = options;
  crashing.checkpoint_every = 2;
  crashing.checkpoint_path = path;
  CstfFramework victim(tensor, crashing);
  simgpu::FaultPlan plan(
      "launch:k=" + std::to_string(launches * 7 / 10) + ",fatal=1");
  victim.device().set_fault_plan(&plan);
  EXPECT_THROW(victim.run(), simgpu::FaultError);
  ASSERT_TRUE(std::filesystem::exists(path)) << "no checkpoint before crash";

  // Recovery: resume from the surviving checkpoint, finish the run.
  FrameworkOptions recovery = options;
  recovery.resume_from = path;
  CstfFramework resumed(tensor, recovery);
  const AuntfResult rest = resumed.run();
  EXPECT_EQ(rest.iterations, 10);
  expect_bitwise_equal(reference.ktensor(), resumed.ktensor());
}

TEST(Checkpoint, PeriodicWritesKeepPreviousCheckpointOnFailure) {
  const SparseTensor tensor = make_tensor();
  const std::string path = ::testing::TempDir() + "/stable.ckpt";
  FrameworkOptions options = base_options();
  options.max_iterations = 3;
  CstfFramework framework(tensor, options);
  framework.run();
  framework.write_checkpoint(path);
  const std::vector<char> original = read_bytes(path);

  // Block the tmp file with a directory: the next save must fail without
  // touching the committed checkpoint (crash consistency).
  std::filesystem::create_directory(path + ".tmp");
  EXPECT_EQ([&] {
    try {
      framework.write_checkpoint(path);
    } catch (const ModelIoError& e) {
      return e.status();
    }
    return ModelIoStatus::kInvalidModel;
  }(), ModelIoStatus::kOpenFailed);
  std::filesystem::remove(path + ".tmp");

  EXPECT_EQ(read_bytes(path), original);
  EXPECT_NO_THROW(load_checkpoint(path));
}

TEST(Checkpoint, CorruptionYieldsTypedErrors) {
  const SparseTensor tensor = make_tensor();
  FrameworkOptions options = base_options();
  options.max_iterations = 2;
  CstfFramework framework(tensor, options);
  framework.run();
  const std::string good = ::testing::TempDir() + "/good.ckpt";
  framework.write_checkpoint(good);
  const std::vector<char> bytes = read_bytes(good);
  ASSERT_GT(bytes.size(), 64u);

  EXPECT_EQ(load_status(::testing::TempDir() + "/nonexistent.ckpt"),
            ModelIoStatus::kOpenFailed);

  const std::string bad = ::testing::TempDir() + "/bad.ckpt";

  {  // Wrong magic.
    std::vector<char> mutated = bytes;
    mutated[0] = 'X';
    write_bytes(bad, mutated);
    EXPECT_EQ(load_status(bad), ModelIoStatus::kBadMagic);
  }
  {  // Unknown version (u32 at offset 8; checked before the checksum).
    std::vector<char> mutated = bytes;
    const std::uint32_t version = 99;
    std::memcpy(mutated.data() + 8, &version, sizeof(version));
    write_bytes(bad, mutated);
    EXPECT_EQ(load_status(bad), ModelIoStatus::kBadVersion);
  }
  {  // Truncated mid-payload.
    std::vector<char> mutated = bytes;
    mutated.resize(bytes.size() / 2);
    write_bytes(bad, mutated);
    EXPECT_EQ(load_status(bad), ModelIoStatus::kTruncated);
  }
  {  // Single bit flip deep in the factor payload.
    std::vector<char> mutated = bytes;
    mutated[bytes.size() - 32] ^= 0x10;
    write_bytes(bad, mutated);
    EXPECT_EQ(load_status(bad), ModelIoStatus::kChecksumMismatch);
  }
  // The original is still intact after all that.
  EXPECT_NO_THROW(load_checkpoint(good));
}

TEST(Checkpoint, NonFiniteFactorsAreRejectedAsInvalidModel) {
  TrainingCheckpoint checkpoint;
  TrainerState& state = checkpoint.state;
  Matrix f(2, 2);
  f.set_all(1.0);
  f(0, 0) = std::numeric_limits<real_t>::quiet_NaN();
  state.factors.push_back(std::move(f));
  state.lambda = {1.0, 1.0};
  const std::string path = ::testing::TempDir() + "/nan.ckpt";
  save_checkpoint(checkpoint, path);
  EXPECT_EQ(load_status(path), ModelIoStatus::kInvalidModel);
}

TEST(Checkpoint, ResumeRefusesMismatchedOptions) {
  const SparseTensor tensor = make_tensor();
  const std::string path = ::testing::TempDir() + "/mismatch.ckpt";
  FrameworkOptions options = base_options();
  options.max_iterations = 2;
  options.checkpoint_every = 2;
  options.checkpoint_path = path;
  CstfFramework framework(tensor, options);
  framework.run();

  // A different rank is a different factorization; the digest refuses it.
  FrameworkOptions wrong = base_options();
  wrong.rank = options.rank + 1;
  wrong.resume_from = path;
  CstfFramework other(tensor, wrong);
  try {
    other.run();
    FAIL() << "resume with a different rank should have been refused";
  } catch (const ModelIoError& e) {
    EXPECT_EQ(e.status(), ModelIoStatus::kOptionsMismatch);
  }

  // Raising max_iterations is the intended use and passes the digest.
  FrameworkOptions more = base_options();
  more.max_iterations = 4;
  more.resume_from = path;
  CstfFramework extended(tensor, more);
  EXPECT_EQ(extended.run().iterations, 4);
}

}  // namespace
}  // namespace cstf
