// Tests for the streaming cSTF extension.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "cstf/metrics.hpp"
#include "simgpu/fault.hpp"
#include "streaming/streaming_cstf.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

// Builds a fully observed (space x item x time) tensor from planted
// non-negative factors, then returns it alongside its per-time slices.
struct StreamScenario {
  SparseTensor full;                 // 3-mode, time last
  std::vector<SparseTensor> slices;  // one 2-mode tensor per time step
};

StreamScenario make_scenario(index_t dim0, index_t dim1, index_t steps,
                             index_t rank, std::uint64_t seed,
                             real_t noise = 0.01) {
  LowRankTensorParams params;
  params.dims = {dim0, dim1, steps};
  params.rank = rank;
  params.target_nnz = dim0 * dim1 * steps;  // fully observed
  params.noise = noise;
  params.seed = seed;
  LowRankTensor lr = generate_low_rank(params);

  StreamScenario scenario;
  scenario.slices.assign(static_cast<std::size_t>(steps),
                         SparseTensor({dim0, dim1}));
  for (index_t i = 0; i < lr.tensor.nnz(); ++i) {
    const index_t t = lr.tensor.indices(2)[static_cast<std::size_t>(i)];
    const index_t coords[2] = {
        lr.tensor.indices(0)[static_cast<std::size_t>(i)],
        lr.tensor.indices(1)[static_cast<std::size_t>(i)]};
    scenario.slices[static_cast<std::size_t>(t)].append(
        coords, lr.tensor.values()[static_cast<std::size_t>(i)]);
  }
  scenario.full = std::move(lr.tensor);
  return scenario;
}

TEST(Streaming, TracksSliceCountAndTemporalShape) {
  StreamScenario scenario = make_scenario(12, 10, 6, 2, 1);
  StreamingOptions opt;
  opt.rank = 3;
  StreamingCstf stream({12, 10}, opt);
  EXPECT_EQ(stream.num_slices(), 0);
  for (const auto& slice : scenario.slices) {
    const auto row = stream.ingest(slice);
    EXPECT_EQ(row.size(), 3u);
  }
  EXPECT_EQ(stream.num_slices(), 6);
  const Matrix t = stream.temporal();
  EXPECT_EQ(t.rows(), 6);
  EXPECT_EQ(t.cols(), 3);
}

TEST(Streaming, FactorsStayNonNegative) {
  StreamScenario scenario = make_scenario(15, 12, 5, 2, 2);
  StreamingOptions opt;
  opt.rank = 3;
  StreamingCstf stream({15, 12}, opt);
  for (const auto& slice : scenario.slices) stream.ingest(slice);
  for (const auto& f : stream.factors()) {
    EXPECT_TRUE(Proximity::non_negative().is_feasible(f, 1e-9));
  }
  const Matrix t = stream.temporal();
  EXPECT_TRUE(Proximity::non_negative().is_feasible(t, 1e-9));
}

TEST(Streaming, ModelStagingIsBitIdenticalAndOverlapBounded) {
  // model_staging only adds copy-stream spans to the time model: the
  // factorization itself is unchanged, and the double-buffered makespan
  // never exceeds the serial copy-then-compute sum.
  StreamScenario scenario = make_scenario(14, 11, 6, 2, 8);
  StreamingOptions opt;
  opt.rank = 3;
  StreamingCstf plain({14, 11}, opt);
  opt.model_staging = true;
  StreamingCstf staged({14, 11}, opt);
  for (const auto& slice : scenario.slices) {
    const auto a = plain.ingest(slice);
    const auto b = staged.ingest(slice);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) EXPECT_DOUBLE_EQ(a[r], b[r]);
  }
  for (std::size_t m = 0; m < plain.factors().size(); ++m) {
    EXPECT_DOUBLE_EQ(max_abs_diff(plain.factors()[m], staged.factors()[m]),
                     0.0);
  }
  EXPECT_FALSE(plain.device().timeline().concurrent());
  EXPECT_TRUE(staged.device().timeline().concurrent());
  EXPECT_GT(staged.device().per_kernel().count("stream_stage_slice"), 0u);
  EXPECT_LE(staged.device().modeled_time_s(),
            staged.device().serial_modeled_time_s() * (1.0 + 1e-9));
}

TEST(Streaming, ConvergesToGoodFitOnStationaryData) {
  // Repeat the stream a few epochs (standard warm-up for streaming CP with
  // random initialization); with mu = 1 the accumulators approach the batch
  // normal equations, so the fit over the final epoch must be high.
  StreamScenario scenario = make_scenario(20, 16, 8, 3, 3);
  StreamingOptions opt;
  opt.rank = 5;
  opt.forgetting = 1.0;
  StreamingCstf stream({20, 16}, opt);
  real_t final_epoch_residual = 0.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    final_epoch_residual = 0.0;
    for (const auto& slice : scenario.slices) {
      stream.ingest(slice);
      final_epoch_residual += stream.last_slice_residual();
    }
    final_epoch_residual /= static_cast<real_t>(scenario.slices.size());
  }
  // Relative per-slice residual well below 1 (one = predicting zeros).
  EXPECT_LT(final_epoch_residual, 0.35);
}

TEST(Streaming, ResidualSpikesOnAnomalousSlice) {
  StreamScenario scenario = make_scenario(18, 14, 10, 2, 4);
  StreamingOptions opt;
  opt.rank = 4;
  StreamingCstf stream({18, 14}, opt);
  // Warm up on the normal stream.
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (const auto& slice : scenario.slices) stream.ingest(slice);
  }
  // Baseline residual for a normal slice.
  stream.ingest(scenario.slices[0]);
  const real_t normal_residual = stream.last_slice_residual();
  // Inject an anomalous slice: large spikes at random cells. (A *uniform*
  // burst would be near rank-1 and thus easy for the model to absorb; the
  // anomaly must be unstructured to be unfittable.)
  SparseTensor burst({18, 14});
  Rng rng(5);
  index_t coords[2];
  for (int k = 0; k < 40; ++k) {
    coords[0] = static_cast<index_t>(rng.uniform_index(18));
    coords[1] = static_cast<index_t>(rng.uniform_index(14));
    burst.append(coords, rng.uniform(20.0, 30.0));
  }
  burst.sort_by_mode(0);
  burst.dedup_sum();
  stream.ingest(burst);
  EXPECT_GT(stream.last_slice_residual(), 2.0 * normal_residual);
}

TEST(Streaming, ForgettingTracksRegimeChange) {
  // Two regimes with disjoint structure; after the switch, a forgetful model
  // must fit new slices better than a never-forgetting one.
  StreamScenario regime_a = make_scenario(16, 12, 6, 2, 6);
  StreamScenario regime_b = make_scenario(16, 12, 6, 2, 7);

  auto final_residual = [&](real_t mu) {
    StreamingOptions opt;
    opt.rank = 4;
    opt.forgetting = mu;
    StreamingCstf stream({16, 12}, opt);
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (const auto& slice : regime_a.slices) stream.ingest(slice);
    }
    real_t residual = 0.0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      residual = 0.0;
      for (const auto& slice : regime_b.slices) {
        stream.ingest(slice);
        residual += stream.last_slice_residual();
      }
      residual /= static_cast<real_t>(regime_b.slices.size());
    }
    return residual;
  };

  EXPECT_LT(final_residual(0.5), final_residual(1.0) + 0.05);
}

TEST(Streaming, KtensorIncludesTemporalMode) {
  StreamScenario scenario = make_scenario(10, 8, 4, 2, 8);
  StreamingOptions opt;
  opt.rank = 2;
  StreamingCstf stream({10, 8}, opt);
  for (const auto& slice : scenario.slices) stream.ingest(slice);
  const KTensor kt = stream.ktensor();
  ASSERT_EQ(kt.num_modes(), 3);
  EXPECT_EQ(kt.factors[2].rows(), 4);
  EXPECT_TRUE(std::isfinite(kt.fit_to(scenario.full)));
}

TEST(Streaming, ScatterEngineIsBitIdenticalToReferenceAcrossChangingSlices) {
  // Slices with DIFFERENT nonzero counts and patterns: a plan cached from
  // slice t would permute the wrong nonzeros of slice t+1 (or trip the
  // engine's size check), so this also regression-tests the per-ingest
  // plan-cache invalidation.
  Rng rng(17);
  std::vector<SparseTensor> slices;
  index_t coords[2];
  for (index_t nnz : {20, 17, 11, 26}) {
    SparseTensor slice({8, 6});
    for (index_t k = 0; k < nnz; ++k) {
      coords[0] = static_cast<index_t>(rng.uniform_index(8));
      coords[1] = static_cast<index_t>(rng.uniform_index(6));
      slice.append(coords, rng.uniform(0.5, 2.0));
    }
    slice.sort_by_mode(0);
    slice.dedup_sum();
    slices.push_back(std::move(slice));
  }

  StreamingOptions reference_opt;
  reference_opt.rank = 3;
  reference_opt.use_scatter_engine = false;
  StreamingCstf reference({8, 6}, reference_opt);

  StreamingOptions engine_opt = reference_opt;
  engine_opt.use_scatter_engine = true;
  engine_opt.scatter.strategy = ScatterStrategy::kSorted;
  StreamingCstf engine({8, 6}, engine_opt);

  for (const auto& slice : slices) {
    const auto a = reference.ingest(slice);
    const auto b = engine.ingest(slice);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      EXPECT_EQ(a[r], b[r]) << "temporal row component " << r;
    }
  }
  for (std::size_t m = 0; m < reference.factors().size(); ++m) {
    const Matrix& fa = reference.factors()[m];
    const Matrix& fb = engine.factors()[m];
    ASSERT_EQ(fa.rows(), fb.rows());
    ASSERT_EQ(fa.cols(), fb.cols());
    EXPECT_EQ(std::memcmp(fa.data(), fb.data(),
                          static_cast<std::size_t>(fa.size()) * sizeof(real_t)),
              0)
        << "mode " << m << " factors differ bitwise";
  }
  EXPECT_GT(engine.device().per_kernel().count("stream_slice_mttkrp"), 0u);
}

TEST(Streaming, IngestFaultPoisonsTheStream) {
  // A fault mid-ingest can leave the aged accumulators with a half-applied
  // slice; the stream must refuse further ingests instead of diverging.
  StreamScenario scenario = make_scenario(10, 8, 3, 2, 21);
  StreamingOptions opt;
  opt.rank = 2;
  StreamingCstf stream({10, 8}, opt);
  stream.ingest(scenario.slices[0]);  // healthy warm-up ingest

  simgpu::FaultPlan plan("launch:k=1,fatal=1");
  stream.device().set_fault_plan(&plan);
  EXPECT_THROW(stream.ingest(scenario.slices[1]), simgpu::FaultError);
  EXPECT_EQ(stream.num_slices(), 1);  // the failed slice was not appended

  // Even with the faults gone, the instance stays poisoned.
  stream.device().set_fault_plan(nullptr);
  EXPECT_THROW(stream.ingest(scenario.slices[2]), Error);
}

TEST(Streaming, MismatchedSliceRejected) {
  StreamingOptions opt;
  opt.rank = 2;
  StreamingCstf stream({10, 8}, opt);
  SparseTensor bad_modes({10, 8, 3});
  bad_modes.append({0, 0, 0}, 1.0);
  EXPECT_THROW(stream.ingest(bad_modes), Error);
  SparseTensor bad_dim({10, 9});
  bad_dim.append({0, 0}, 1.0);
  EXPECT_THROW(stream.ingest(bad_dim), Error);
}

}  // namespace
}  // namespace cstf
