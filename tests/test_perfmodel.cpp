// Tests of the analytical ADMM model (paper Eqs. 3-5) and the stat-scaling
// helper, including cross-validation of the closed form against the metered
// fused-ADMM implementation.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "la/blas.hpp"
#include "perfmodel/admm_model.hpp"
#include "updates/admm.hpp"

namespace cstf {
namespace {

using perfmodel::admm_iteration_model;
using perfmodel::admm_iteration_time;
using perfmodel::scale_stats;

TEST(AdmmModel, ClosedFormMatchesEquations) {
  const auto m = admm_iteration_model(1000.0, 32.0);
  EXPECT_DOUBLE_EQ(m.flops, 19.0 * 1000 * 32 + 2.0 * 1000 * 32 * 32);
  EXPECT_DOUBLE_EQ(m.words, 22.0 * 1000 * 32 + 32.0 * 32);
  EXPECT_DOUBLE_EQ(m.intensity, m.flops / (m.words * 8.0));
}

class AdmmIntensityRanks : public ::testing::TestWithParam<
                               std::pair<double, double>> {};

TEST_P(AdmmIntensityRanks, MatchesPaperSection33Values) {
  // "arithmetic intensities of 0.29, 0.47, and 0.83 for ranks 16, 32, 64"
  const auto [rank, expected] = GetParam();
  const auto m = admm_iteration_model(1e6, rank);  // I >> R
  EXPECT_NEAR(m.intensity, expected, 0.01);
}

INSTANTIATE_TEST_SUITE_P(PaperValues, AdmmIntensityRanks,
                         ::testing::Values(std::pair{16.0, 0.29},
                                           std::pair{32.0, 0.47},
                                           std::pair{64.0, 0.83}));

TEST(AdmmModel, LowIntensityImpliesBandwidthBound) {
  // At R=32, AI ~0.47 flop/B; the A100's balance point is ~4.8 flop/B, so
  // the roofline time must equal the memory term.
  const auto spec = simgpu::a100();
  const double t = admm_iteration_time(1e6, 32.0, spec);
  const auto m = admm_iteration_model(1e6, 32.0);
  const double t_mem =
      m.words * 8.0 / (spec.mem_bandwidth * spec.stream_bw_fraction);
  EXPECT_DOUBLE_EQ(t, t_mem);
}

TEST(AdmmModel, TimeScalesLinearlyInModeLength) {
  const auto spec = simgpu::h100();
  const double t1 = admm_iteration_time(1e5, 32.0, spec);
  const double t10 = admm_iteration_time(1e6, 32.0, spec);
  EXPECT_NEAR(t10 / t1, 10.0, 0.01);
}

TEST(AdmmModel, MeteredFusedAdmmTracksClosedFormTraffic) {
  // One fused inner iteration should move memory on the same order as the
  // paper's Q = 22*I*R words: the fused path cuts intermediate traffic, so
  // it must land below Q but above the bare operand floor of ~12*I*R.
  const index_t i_len = 4000, rank = 32;
  Rng rng(1);
  Matrix g(2 * rank, rank);
  g.fill_normal(rng);
  Matrix s(rank, rank);
  la::gram(g, s);
  Matrix m(i_len, rank), h(i_len, rank);
  m.fill_uniform(rng);
  h.fill_uniform(rng);

  AdmmOptions opt;
  opt.inner_iterations = 1;
  opt.operation_fusion = true;
  opt.preinversion = true;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  ModeState state;
  admm.update(dev, s, m, h, state);

  const double ir_words = static_cast<double>(i_len * rank);
  const double measured_words = dev.total().total_bytes() / 8.0;
  EXPECT_GT(measured_words, 12.0 * ir_words);
  EXPECT_LT(measured_words, 22.0 * ir_words + 10.0 * rank * rank);
}

TEST(ScaleStats, ScalesExtensiveLeavesIntensive) {
  simgpu::KernelStats stats;
  stats.flops = 100;
  stats.bytes_streamed = 200;
  stats.bytes_reused = 300;
  stats.bytes_random = 400;
  stats.working_set_bytes = 500;
  stats.parallel_items = 600;
  stats.serial_depth = 700;
  stats.launches = 8;
  const auto scaled = scale_stats(stats, 10.0);
  EXPECT_DOUBLE_EQ(scaled.flops, 1000);
  EXPECT_DOUBLE_EQ(scaled.bytes_streamed, 2000);
  EXPECT_DOUBLE_EQ(scaled.bytes_reused, 3000);
  EXPECT_DOUBLE_EQ(scaled.bytes_random, 4000);
  EXPECT_DOUBLE_EQ(scaled.working_set_bytes, 5000);
  EXPECT_DOUBLE_EQ(scaled.parallel_items, 6000);
  EXPECT_DOUBLE_EQ(scaled.serial_depth, 700);  // intensive: unchanged
  EXPECT_EQ(scaled.launches, 8);               // intensive: unchanged
}

TEST(ScaleStats, ScaledAnalogModelsLikeFullSize) {
  // Scaling a metered record by k and modeling it must equal modeling a
  // k-times-larger run directly, for bandwidth-bound kernels past
  // saturation.
  simgpu::KernelStats small;
  small.bytes_streamed = 1e7;
  small.parallel_items = 1e9;
  const auto spec = simgpu::a100();
  const double t_small = simgpu::model_time(small, spec).total_s;
  const double t_scaled =
      simgpu::model_time(scale_stats(small, 50.0), spec).total_s;
  EXPECT_NEAR(t_scaled / t_small, 50.0, 0.5);
}

}  // namespace
}  // namespace cstf
