// Integration tests: KTensor, the AUNTF driver, the CstfFramework facade,
// and the SPLATT/PLANC baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>

#include "baselines/planc.hpp"
#include "baselines/splatt.hpp"
#include "cstf/auntf.hpp"
#include "cstf/framework.hpp"
#include "cstf/ktensor.hpp"
#include "cstf/sampled_fit.hpp"
#include "la/blas.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "perfmodel/admm_model.hpp"
#include "tensor/datasets.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

LowRankTensor make_low_rank(std::uint64_t seed = 1) {
  // Fully observed (target_nnz covers every cell): CP of a partially
  // sampled tensor treats missing cells as zeros, so only full observation
  // makes the planted rank-4 model recoverable with high fit.
  LowRankTensorParams params;
  params.dims = {24, 18, 14};
  params.rank = 4;
  params.target_nnz = 24 * 18 * 14;
  params.noise = 0.01;
  params.seed = seed;
  return generate_low_rank(params);
}

TEST(KTensor, ValueAtMatchesExplicitSum) {
  KTensor kt;
  kt.factors.push_back(Matrix::from_rows({{1, 2}, {3, 4}}));
  kt.factors.push_back(Matrix::from_rows({{5, 6}, {7, 8}}));
  kt.lambda = {1.0, 0.5};
  index_t coords[2] = {1, 0};
  // 1*3*5 + 0.5*4*6 = 27.
  EXPECT_DOUBLE_EQ(kt.value_at(coords), 27.0);
}

TEST(KTensor, NormSqMatchesDenseEnumeration) {
  Rng rng(3);
  KTensor kt;
  kt.factors.emplace_back(5, 3);
  kt.factors.emplace_back(4, 3);
  kt.factors.emplace_back(6, 3);
  for (auto& f : kt.factors) f.fill_uniform(rng, 0.0, 1.0);
  kt.lambda = {1.0, 2.0, 0.5};
  real_t brute = 0.0;
  index_t coords[3];
  for (coords[0] = 0; coords[0] < 5; ++coords[0]) {
    for (coords[1] = 0; coords[1] < 4; ++coords[1]) {
      for (coords[2] = 0; coords[2] < 6; ++coords[2]) {
        const real_t v = kt.value_at(coords);
        brute += v * v;
      }
    }
  }
  EXPECT_NEAR(kt.norm_sq(), brute, 1e-9 * brute);
}

TEST(KTensor, PerfectFitOnSelfGeneratedTensor) {
  // Sample a tensor exactly from the model: fit to those nonzeros is
  // dominated by the dense zero region, but against its dense version the
  // fit must be 1.
  Rng rng(4);
  KTensor kt;
  kt.factors.emplace_back(8, 2);
  kt.factors.emplace_back(7, 2);
  for (auto& f : kt.factors) f.fill_uniform(rng, 0.1, 1.0);
  kt.lambda = {1.0, 1.0};
  SparseTensor dense_as_sparse({8, 7});
  index_t coords[2];
  for (coords[0] = 0; coords[0] < 8; ++coords[0]) {
    for (coords[1] = 0; coords[1] < 7; ++coords[1]) {
      dense_as_sparse.append(coords, kt.value_at(coords));
    }
  }
  EXPECT_NEAR(kt.fit_to(dense_as_sparse), 1.0, 1e-9);
}

TEST(KTensor, CheckpointRoundTripsExactly) {
  Rng rng(71);
  KTensor model;
  model.factors.emplace_back(13, 3);
  model.factors.emplace_back(9, 3);
  model.factors.emplace_back(7, 3);
  for (auto& f : model.factors) f.fill_normal(rng);
  model.lambda = {1.5, 0.25, 3.75};
  const std::string path = ::testing::TempDir() + "/model.ckpt";
  save_ktensor(model, path);
  const KTensor back = load_ktensor(path);
  ASSERT_EQ(back.num_modes(), 3);
  ASSERT_EQ(back.rank(), 3);
  EXPECT_EQ(back.lambda, model.lambda);
  for (int m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(max_abs_diff(back.factors[m], model.factors[m]), 0.0);
  }
}

TEST(KTensor, CheckpointRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOT-A-CHECKPOINT-FILE-AT-ALL";
  }
  EXPECT_THROW(load_ktensor(path), Error);
  EXPECT_THROW(load_ktensor("/nonexistent/model.ckpt"), Error);
}

TEST(KTensor, ValidateAcceptsWellFormedModel) {
  Rng rng(8);
  KTensor model;
  model.factors.emplace_back(6, 2);
  model.factors.emplace_back(4, 2);
  for (auto& f : model.factors) f.fill_uniform(rng, 0.0, 1.0);
  model.lambda = {1.0, 2.0};
  EXPECT_NO_THROW(model.validate());
}

TEST(KTensor, ValidateRejectsStructuralAndNumericalDefects) {
  const auto well_formed = [] {
    Rng rng(8);
    KTensor model;
    model.factors.emplace_back(6, 2);
    model.factors.emplace_back(4, 2);
    for (auto& f : model.factors) f.fill_uniform(rng, 0.0, 1.0);
    model.lambda = {1.0, 2.0};
    return model;
  };

  EXPECT_THROW(KTensor{}.validate(), Error);  // no modes

  KTensor bad_lambda = well_formed();
  bad_lambda.lambda.push_back(3.0);
  EXPECT_THROW(bad_lambda.validate(), Error);

  KTensor ragged = well_formed();
  ragged.factors[1] = Matrix(4, 3);  // rank mismatch across modes
  EXPECT_THROW(ragged.validate(), Error);

  KTensor nan_factor = well_formed();
  nan_factor.factors[0](3, 1) = std::nan("");
  EXPECT_THROW(nan_factor.validate(), Error);

  KTensor inf_lambda = well_formed();
  inf_lambda.lambda[0] = std::numeric_limits<real_t>::infinity();
  EXPECT_THROW(inf_lambda.validate(), Error);
}

TEST(SampledFit, FullSampleIsBitIdenticalToExactFit) {
  const LowRankTensor data = make_low_rank(21);
  Rng rng(22);
  KTensor model;
  for (index_t dim : data.tensor.dims()) {
    model.factors.emplace_back(dim, 4);
    model.factors.back().fill_uniform(rng, 0.0, 1.0);
  }
  model.lambda = {1.0, 0.75, 0.5, 0.25};

  SampledFitOptions options;
  options.sample_size = data.tensor.nnz();  // covers every nonzero
  const real_t exact = model.fit_to(data.tensor);
  EXPECT_EQ(sampled_fit(model, data.tensor, options), exact);
  options.sample_size = data.tensor.nnz() * 3;  // oversampling changes nothing
  EXPECT_EQ(sampled_fit(model, data.tensor, options), exact);
}

TEST(SampledFit, FixedSeedIsDeterministic) {
  const LowRankTensor data = make_low_rank(31);
  Rng rng(32);
  KTensor model;
  for (index_t dim : data.tensor.dims()) {
    model.factors.emplace_back(dim, 4);
    model.factors.back().fill_uniform(rng, 0.0, 1.0);
  }
  model.lambda = {1.0, 1.0, 1.0, 1.0};

  SampledFitOptions options;
  options.sample_size = data.tensor.nnz() / 8;
  options.seed = 77;
  const real_t first = sampled_fit(model, data.tensor, options);
  const real_t second = sampled_fit(model, data.tensor, options);
  EXPECT_EQ(first, second);  // same seed, same sample, same estimate

  options.seed = 78;
  const real_t other_seed = sampled_fit(model, data.tensor, options);
  // A different sample gives a (generally) different but nearby estimate.
  EXPECT_NEAR(other_seed, first, 0.2);
}

TEST(Auntf, FitIncreasesAndFactorsStayFeasible) {
  const LowRankTensor lr = make_low_rank();
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmOptions admm_opt;
  admm_opt.prox = Proximity::non_negative();
  admm_opt.inner_iterations = 10;
  AdmmUpdate update(admm_opt);
  AuntfOptions opt;
  opt.rank = 6;
  opt.max_iterations = 8;
  Auntf driver(dev, backend, update, opt);
  driver.initialize();
  const real_t fit1 = driver.iterate();
  real_t last_fit = fit1;
  for (int i = 0; i < 7; ++i) last_fit = driver.iterate();
  EXPECT_GT(last_fit, fit1 - 1e-6);
  EXPECT_GT(last_fit, 0.9);
  for (const auto& f : driver.factors()) {
    EXPECT_TRUE(Proximity::non_negative().is_feasible(f, 1e-9));
  }
  for (real_t l : driver.lambda()) EXPECT_GE(l, 0.0);
}

TEST(Auntf, FactorColumnsAreNormalizedAfterIterate) {
  const LowRankTensor lr = make_low_rank(2);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmUpdate update(AdmmOptions{});
  AuntfOptions opt;
  opt.rank = 4;
  Auntf driver(dev, backend, update, opt);
  driver.initialize();
  driver.iterate();
  for (const auto& f : driver.factors()) {
    for (index_t j = 0; j < f.cols(); ++j) {
      const real_t norm = la::nrm2(f.rows(), f.col(j));
      // Unit norm, or an untouched degenerate column.
      EXPECT_TRUE(std::abs(norm - 1.0) < 1e-9 || norm < 1e-9) << "col " << j;
    }
  }
}

TEST(Auntf, PhaseTimersAndModeledPhasesArePopulated) {
  const LowRankTensor lr = make_low_rank(3);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmUpdate update(AdmmOptions{});
  AuntfOptions opt;
  opt.rank = 4;
  Auntf driver(dev, backend, update, opt);
  driver.initialize();
  driver.iterate();
  for (const char* phase :
       {phase::kGram, phase::kMttkrp, phase::kUpdate, phase::kNormalize}) {
    EXPECT_GT(driver.phases().total(phase), 0.0) << phase;
    ASSERT_TRUE(driver.modeled_phase_seconds().count(phase)) << phase;
    EXPECT_GT(driver.modeled_phase_seconds().at(phase), 0.0) << phase;
  }
}

TEST(Auntf, RunStopsOnFitTolerance) {
  const LowRankTensor lr = make_low_rank(4);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmUpdate update(AdmmOptions{});
  AuntfOptions opt;
  opt.rank = 4;
  opt.max_iterations = 50;
  opt.fit_tolerance = 1e-3;
  Auntf driver(dev, backend, update, opt);
  const AuntfResult result = driver.run();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50);
  EXPECT_EQ(result.fit_history.size(),
            static_cast<std::size_t>(result.iterations));
}

TEST(Auntf, UncomputedFitReturnsNaN) {
  const LowRankTensor lr = make_low_rank(5);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmUpdate update(AdmmOptions{});
  AuntfOptions opt;
  opt.rank = 4;
  opt.compute_fit = false;
  Auntf driver(dev, backend, update, opt);
  driver.initialize();
  EXPECT_TRUE(std::isnan(driver.iterate()));
}

TEST(Auntf, PipelineStreamsIsBitIdenticalAndNeverSlowerModeled) {
  // Streams affect only the time model: with pipeline_streams on, every
  // factor matches the serial run exactly, and the gram-lane makespan never
  // exceeds the serial per-kernel sum.
  const LowRankTensor lr = make_low_rank(12);
  AdmmOptions admm_opt;
  admm_opt.inner_iterations = 5;
  AdmmUpdate update(admm_opt);

  auto run_with = [&](bool pipeline, simgpu::Device& dev) {
    AuntfOptions opt;
    opt.rank = 4;
    opt.seed = 31;
    opt.pipeline_streams = pipeline;
    BlcoBackend backend(lr.tensor);
    Auntf driver(dev, backend, update, opt);
    driver.initialize();
    driver.iterate();
    driver.iterate();
    return driver.ktensor();
  };

  simgpu::Device serial_dev(simgpu::a100());
  simgpu::Device piped_dev(simgpu::a100());
  const KTensor serial = run_with(false, serial_dev);
  const KTensor piped = run_with(true, piped_dev);
  for (std::size_t m = 0; m < serial.factors.size(); ++m) {
    EXPECT_DOUBLE_EQ(max_abs_diff(serial.factors[m], piped.factors[m]), 0.0);
  }
  EXPECT_FALSE(serial_dev.timeline().concurrent());
  EXPECT_TRUE(piped_dev.timeline().concurrent());
  EXPECT_LE(piped_dev.modeled_time_s(),
            piped_dev.serial_modeled_time_s() * (1.0 + 1e-9));
}

TEST(Auntf, SameSeedSameResultAcrossBackends) {
  // The driver's math must not depend on the MTTKRP format: BLCO, CSF,
  // ALTO, and COO backends produce the same factorization.
  const LowRankTensor lr = make_low_rank(6);
  AdmmOptions admm_opt;
  admm_opt.inner_iterations = 5;
  AdmmUpdate update(admm_opt);
  AuntfOptions opt;
  opt.rank = 4;
  opt.seed = 99;

  auto run_with = [&](const MttkrpBackend& backend) {
    simgpu::Device dev(simgpu::a100());
    Auntf driver(dev, backend, update, opt);
    driver.initialize();
    driver.iterate();
    driver.iterate();
    return driver.ktensor();
  };

  BlcoBackend blco(lr.tensor);
  CsfBackend csf(lr.tensor);
  AltoBackend alto(lr.tensor);
  CooBackend coo(lr.tensor);
  const KTensor kt_blco = run_with(blco);
  const KTensor kt_csf = run_with(csf);
  const KTensor kt_alto = run_with(alto);
  const KTensor kt_coo = run_with(coo);
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(max_abs_diff(kt_blco.factors[m], kt_csf.factors[m]), 1e-8);
    EXPECT_LT(max_abs_diff(kt_blco.factors[m], kt_alto.factors[m]), 1e-8);
    EXPECT_LT(max_abs_diff(kt_blco.factors[m], kt_coo.factors[m]), 1e-8);
  }
}

TEST(Auntf, ScatterStrategiesAgreeAcrossEngines) {
  // The scatter strategy changes only the accumulation schedule, never the
  // math: every concrete strategy must factor to (numerically) the same
  // model as the atomic baseline.
  const LowRankTensor lr = make_low_rank(6);
  AdmmOptions admm_opt;
  admm_opt.inner_iterations = 5;
  AdmmUpdate update(admm_opt);
  AuntfOptions opt;
  opt.rank = 4;
  opt.seed = 99;

  auto run_with = [&](ScatterStrategy strategy) {
    ScatterOptions scatter;
    scatter.strategy = strategy;
    simgpu::Device dev(simgpu::a100());
    BlcoBackend backend(lr.tensor, 4096, scatter);
    Auntf driver(dev, backend, update, opt);
    driver.initialize();
    driver.iterate();
    driver.iterate();
    EXPECT_EQ(backend.last_scatter_strategy(), strategy);
    return driver.ktensor();
  };

  const KTensor atomic = run_with(ScatterStrategy::kAtomic);
  const KTensor privatized = run_with(ScatterStrategy::kPrivatized);
  const KTensor sorted = run_with(ScatterStrategy::kSorted);
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(max_abs_diff(atomic.factors[m], privatized.factors[m]), 1e-8);
    EXPECT_LT(max_abs_diff(atomic.factors[m], sorted.factors[m]), 1e-8);
  }
}

TEST(Framework, DeterministicScatterGivesBitIdenticalRuns) {
  // The end-to-end determinism guarantee: with scatter.deterministic set,
  // two complete factorizations from the same seed agree bit for bit —
  // every factor entry and every lambda.
  const LowRankTensor lr = make_low_rank(9);
  FrameworkOptions options;
  options.rank = 4;
  options.max_iterations = 4;
  options.seed = 5;
  options.fit_tolerance = 0.0;
  options.scatter.deterministic = true;

  auto run_once = [&]() {
    CstfFramework framework(lr.tensor, options);
    framework.run();
    return framework.ktensor();
  };
  const KTensor a = run_once();
  const KTensor b = run_once();
  ASSERT_EQ(a.num_modes(), b.num_modes());
  for (int m = 0; m < a.num_modes(); ++m) {
    EXPECT_DOUBLE_EQ(max_abs_diff(a.factors[m], b.factors[m]), 0.0)
        << "mode " << m;
  }
  EXPECT_EQ(a.lambda, b.lambda);
}

TEST(Framework, BackendResolvesAutoAndCachesSortedPlans) {
  const LowRankTensor lr = make_low_rank(13);
  ScatterOptions scatter;
  scatter.strategy = ScatterStrategy::kSorted;
  BlcoBackend backend(lr.tensor, 4096, scatter);
  CooBackend reference(lr.tensor);
  simgpu::Device dev(simgpu::a100());
  simgpu::Device ref_dev(simgpu::a100());
  Rng rng(8);
  std::vector<Matrix> factors;
  for (int m = 0; m < backend.num_modes(); ++m) {
    factors.emplace_back(backend.dim(m), 4);
    factors.back().fill_uniform(rng, 0.1, 1.0);
  }
  for (int mode = 0; mode < backend.num_modes(); ++mode) {
    Matrix got(backend.dim(mode), 4), want(backend.dim(mode), 4);
    backend.mttkrp(dev, factors, mode, got);
    EXPECT_EQ(backend.last_scatter_strategy(), ScatterStrategy::kSorted);
    reference.mttkrp(ref_dev, factors, mode, want);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
    // Second call reuses the cached plan and must agree exactly.
    Matrix again(backend.dim(mode), 4);
    backend.mttkrp(dev, factors, mode, again);
    EXPECT_DOUBLE_EQ(max_abs_diff(got, again), 0.0) << "mode " << mode;
  }
}

TEST(Framework, DimtreeMatchesFlatAndIsDeterministicEndToEnd) {
  // End-to-end guarantees of the reuse engine: (a) a dimtree run is
  // bit-reproducible under deterministic scatter, (b) it agrees with the
  // flat engine to fp tolerance (the flat path is the BLCO kernel, whose
  // block ordering regroups the per-row sums, so the two engines are only
  // bitwise-equal against the *COO reference* order — which the dimtree
  // backend is, see DimtreeBackendIsBitIdenticalToCooReference).
  LowRankTensorParams params;
  params.dims = {21, 11, 17, 9};
  params.rank = 4;
  params.target_nnz = 21 * 11 * 17 * 9;
  params.noise = 0.01;
  params.seed = 31;
  const LowRankTensor lr = generate_low_rank(params);

  FrameworkOptions options;
  options.rank = 4;
  options.max_iterations = 3;
  options.seed = 5;
  options.scatter.deterministic = true;

  auto run_mode = [&](MttkrpMode mode) {
    FrameworkOptions o = options;
    o.mttkrp_mode = mode;
    CstfFramework framework(lr.tensor, o);
    framework.run();
    EXPECT_EQ(framework.resolved_mttkrp_mode(), mode);
    EXPECT_EQ(framework.backend().dimtree() != nullptr,
              mode == MttkrpMode::kDimtree);
    return framework.ktensor();
  };
  const KTensor flat = run_mode(MttkrpMode::kFlat);
  const KTensor tree = run_mode(MttkrpMode::kDimtree);
  const KTensor tree2 = run_mode(MttkrpMode::kDimtree);
  ASSERT_EQ(flat.num_modes(), tree.num_modes());
  for (int m = 0; m < flat.num_modes(); ++m) {
    EXPECT_DOUBLE_EQ(max_abs_diff(tree.factors[m], tree2.factors[m]), 0.0)
        << "mode " << m;
    EXPECT_LT(max_abs_diff(flat.factors[m], tree.factors[m]), 1e-10)
        << "mode " << m;
  }
  EXPECT_EQ(tree.lambda, tree2.lambda);
}

TEST(Framework, DimtreeBackendIsBitIdenticalToCooReference) {
  // The acceptance bar: with deterministic scatter, the dimtree-enabled
  // BLCO backend reproduces mttkrp_ref bit for bit on every mode — chain
  // derives and the mode-0 from-raw path both fold factors in the
  // reference's ascending order and accumulate in ascending nonzero id.
  const LowRankTensor lr = make_low_rank(23);
  ScatterOptions scatter;
  scatter.deterministic = true;
  BlcoBackend backend(lr.tensor, 4096, scatter);
  backend.enable_dimtree(lr.tensor, 4);
  simgpu::Device dev(simgpu::a100());
  Rng rng(19);
  std::vector<Matrix> factors;
  for (int m = 0; m < backend.num_modes(); ++m) {
    factors.emplace_back(backend.dim(m), 4);
    factors.back().fill_uniform(rng, 0.1, 1.0);
  }
  for (int mode = 0; mode < backend.num_modes(); ++mode) {
    Matrix got(backend.dim(mode), 4), want(backend.dim(mode), 4);
    backend.mttkrp(dev, factors, mode, got);
    mttkrp_ref(lr.tensor, factors, mode, want);
    EXPECT_DOUBLE_EQ(max_abs_diff(got, want), 0.0) << "mode " << mode;
  }
}

TEST(Framework, DimtreePlanAccountsForChainInPeakBytes) {
  // The chain intermediate must be a first-class plan buffer: visible in
  // the DAG dump, alive across the iteration, and included in peak_bytes —
  // that is what keeps the budget/OOM reasoning honest.
  const LowRankTensor lr = make_low_rank(17);
  FrameworkOptions flat_opts;
  flat_opts.rank = 6;
  flat_opts.mttkrp_mode = MttkrpMode::kFlat;
  CstfFramework flat(lr.tensor, flat_opts);

  FrameworkOptions tree_opts = flat_opts;
  tree_opts.mttkrp_mode = MttkrpMode::kDimtree;
  CstfFramework tree(lr.tensor, tree_opts);

  const DimTreeEngine* engine = tree.backend().dimtree();
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->chain_fits());
  EXPECT_GE(tree.device_footprint_bytes(),
            flat.device_footprint_bytes() + engine->chain_bytes());

  const std::string dump = tree.driver().plan().describe();
  EXPECT_NE(dump.find("dimtree_chain"), std::string::npos);
  EXPECT_NE(dump.find("dimtree_extend_0"), std::string::npos);
  EXPECT_EQ(flat.driver().plan().describe().find("dimtree_chain"),
            std::string::npos);
}

TEST(Framework, UnequalModeSizesKeepMttkrpWorkspaceExact) {
  // Regression for the shared m_out workspace: with mode sizes that are not
  // monotonically ordered, the per-mode resize/validate must hand every
  // update an exactly dim(n) x R MTTKRP result — a workspace sized for the
  // largest mode and merely reused would expose stale trailing rows. Flat
  // and dimtree must agree through the non-monotone sequence.
  LowRankTensorParams params;
  params.dims = {31, 7, 23, 5};  // large, small, large, small
  params.rank = 3;
  params.target_nnz = 31 * 7 * 23 * 5;
  params.noise = 0.01;
  params.seed = 77;
  const LowRankTensor lr = generate_low_rank(params);

  FrameworkOptions options;
  options.rank = 3;
  options.max_iterations = 3;
  options.scatter.deterministic = true;

  auto run_mode = [&](MttkrpMode mode) {
    FrameworkOptions o = options;
    o.mttkrp_mode = mode;
    CstfFramework framework(lr.tensor, o);
    framework.run();
    return framework.ktensor();
  };
  const KTensor flat = run_mode(MttkrpMode::kFlat);
  const KTensor tree = run_mode(MttkrpMode::kDimtree);
  for (int m = 0; m < flat.num_modes(); ++m) {
    EXPECT_EQ(flat.factors[m].rows(), lr.tensor.dim(m));
    EXPECT_LT(max_abs_diff(flat.factors[m], tree.factors[m]), 1e-10)
        << "mode " << m;
    for (index_t j = 0; j < flat.factors[m].cols(); ++j) {
      for (index_t i = 0; i < flat.factors[m].rows(); ++i) {
        EXPECT_TRUE(std::isfinite(flat.factors[m](i, j)));
      }
    }
  }
}

TEST(Auntf, PerModeMixedConstraints) {
  // Non-negativity on modes 0-1, a probability simplex on mode 2 — the
  // topic-model-style mixed-constraint configuration.
  const LowRankTensor lr = make_low_rank(21);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmOptions nn_opt;
  nn_opt.prox = Proximity::non_negative();
  AdmmUpdate nonneg(nn_opt);
  AdmmOptions sx_opt;
  sx_opt.prox = Proximity::simplex();
  sx_opt.inner_iterations = 30;
  AdmmUpdate simplex(sx_opt);
  AuntfOptions opt;
  opt.rank = 4;
  opt.max_iterations = 8;
  Auntf driver(dev, backend, {&nonneg, &nonneg, &simplex}, opt);
  driver.initialize();
  for (int i = 0; i < 8; ++i) driver.iterate();

  EXPECT_TRUE(Proximity::non_negative().is_feasible(driver.factors()[0], 1e-9));
  EXPECT_TRUE(Proximity::non_negative().is_feasible(driver.factors()[1], 1e-9));
  // The simplex-constrained factor sums to 1 per column *before*
  // normalization rescales it; after the driver's 2-norm normalization the
  // columns are unit-norm but still non-negative with uniform sign.
  const Matrix& f2 = driver.factors()[2];
  EXPECT_TRUE(Proximity::non_negative().is_feasible(f2, 1e-9));
}

TEST(Auntf, PerModeCountMismatchThrows) {
  const LowRankTensor lr = make_low_rank(22);
  simgpu::Device dev(simgpu::a100());
  BlcoBackend backend(lr.tensor);
  AdmmUpdate update(AdmmOptions{});
  AuntfOptions opt;
  opt.rank = 2;
  EXPECT_THROW(Auntf(dev, backend, {&update, &update}, opt), Error);
}

class FrameworkSchemes : public ::testing::TestWithParam<UpdateScheme> {};

TEST_P(FrameworkSchemes, RunsAndRecoversSignal) {
  const LowRankTensor lr = make_low_rank(7);
  FrameworkOptions opt;
  opt.rank = 6;
  opt.max_iterations = 10;
  opt.scheme = GetParam();
  CstfFramework framework(lr.tensor, opt);
  const AuntfResult result = framework.run();
  EXPECT_EQ(result.iterations, 10);
  // MU makes slow per-sweep progress; the others should essentially recover
  // the planted model (1% noise) on fully observed data.
  EXPECT_GT(result.final_fit, GetParam() == UpdateScheme::kMu ? 0.3 : 0.85);
  if (GetParam() != UpdateScheme::kAls) {
    for (const auto& f : framework.ktensor().factors) {
      EXPECT_TRUE(Proximity::non_negative().is_feasible(f, 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FrameworkSchemes,
    ::testing::Values(UpdateScheme::kCuAdmm, UpdateScheme::kAdmm,
                      UpdateScheme::kMu, UpdateScheme::kHals,
                      UpdateScheme::kAls, UpdateScheme::kBpp),
    [](const auto& name_info) {
      switch (name_info.param) {
        case UpdateScheme::kCuAdmm: return "cuADMM";
        case UpdateScheme::kAdmm: return "ADMM";
        case UpdateScheme::kMu: return "MU";
        case UpdateScheme::kHals: return "HALS";
        case UpdateScheme::kAls: return "ALS";
        case UpdateScheme::kBpp: return "BPP";
      }
      return "unknown";
    });

TEST(Framework, CuAdmmAndGenericAdmmAgree) {
  const LowRankTensor lr = make_low_rank(8);
  FrameworkOptions a;
  a.rank = 4;
  a.max_iterations = 3;
  a.scheme = UpdateScheme::kCuAdmm;
  FrameworkOptions b = a;
  b.scheme = UpdateScheme::kAdmm;
  CstfFramework fa(lr.tensor, a), fb(lr.tensor, b);
  fa.run();
  fb.run();
  const KTensor ka = fa.ktensor(), kb = fb.ktensor();
  for (int m = 0; m < 3; ++m) {
    EXPECT_LT(max_abs_diff(ka.factors[m], kb.factors[m]), 1e-8);
  }
}

TEST(Framework, L1ConstraintYieldsSparserFactors) {
  const LowRankTensor lr = make_low_rank(9);
  FrameworkOptions plain;
  plain.rank = 6;
  plain.max_iterations = 6;
  plain.prox = Proximity::non_negative();
  FrameworkOptions sparse = plain;
  sparse.prox = Proximity::l1_non_negative(0.3);
  CstfFramework f_plain(lr.tensor, plain), f_sparse(lr.tensor, sparse);
  f_plain.run();
  f_sparse.run();
  auto zero_fraction = [](const KTensor& kt) {
    index_t zeros = 0, total = 0;
    for (const auto& f : kt.factors) {
      for (index_t i = 0; i < f.size(); ++i) zeros += (f.data()[i] == 0.0);
      total += f.size();
    }
    return static_cast<double>(zeros) / static_cast<double>(total);
  };
  EXPECT_GT(zero_fraction(f_sparse.ktensor()), zero_fraction(f_plain.ktensor()));
}

TEST(Baselines, SplattMatchesGpuFrameworkFit) {
  const LowRankTensor lr = make_low_rank(10);
  SplattOptions sopt;
  sopt.rank = 5;
  sopt.max_iterations = 6;
  SplattCpu splatt(lr.tensor, sopt);
  const AuntfResult splatt_result = splatt.run();

  FrameworkOptions gopt;
  gopt.rank = 5;
  gopt.max_iterations = 6;
  CstfFramework gpu(lr.tensor, gopt);
  const AuntfResult gpu_result = gpu.run();

  // Same algorithm family on the same data: fits land close together.
  EXPECT_NEAR(splatt_result.final_fit, gpu_result.final_fit, 0.05);
  EXPECT_GT(splatt_result.final_fit, 0.8);
}

TEST(Baselines, SplattModeledOnXeonIsSlowerThanGpuModel) {
  // The core claim of Figures 5-6, at test scale: for the same per-iteration
  // work, modeled Xeon time exceeds modeled A100 time.
  DatasetAnalog analog = make_analog(dataset_by_name("NELL2"), 20000);
  SplattOptions sopt;
  sopt.rank = 32;
  sopt.max_iterations = 1;
  sopt.compute_fit = false;
  SplattCpu splatt(analog.tensor, sopt);
  splatt.driver().initialize();
  splatt.driver().iterate();

  FrameworkOptions gopt;
  gopt.rank = 32;
  gopt.max_iterations = 1;
  gopt.compute_fit = false;
  CstfFramework gpu(analog.tensor, gopt);
  gpu.driver().initialize();
  gpu.driver().iterate();

  // At analog scale the GPU's kernel-launch overhead dominates (the paper's
  // small-tensor effect, cf. NIPS in Figure 5); scale the metered record to
  // full NELL2 size before modeling, as the benches do.
  const double scale = analog.nnz_scale();
  EXPECT_GT(perfmodel::modeled_time_scaled(splatt.device(), scale),
            perfmodel::modeled_time_scaled(gpu.device(), scale));
}

TEST(Baselines, PlancSparseSupportsMuAndHals) {
  const LowRankTensor lr = make_low_rank(11);
  for (UpdateScheme scheme : {UpdateScheme::kMu, UpdateScheme::kHals}) {
    PlancOptions opt;
    // Slightly over-parameterized rank: exact-rank NTF is prone to local
    // minima; the planted model is rank 4.
    opt.rank = 6;
    opt.max_iterations = 20;
    opt.scheme = scheme;
    PlancSparseCpu planc(lr.tensor, opt);
    const AuntfResult result = planc.run();
    EXPECT_GT(result.final_fit, scheme == UpdateScheme::kMu ? 0.3 : 0.8);
  }
}

TEST(Baselines, PlancDenseUpdateDominatedBySparseNotDense) {
  // Figure 1's contrast: on a dense tensor MTTKRP dominates; on a sparse
  // tensor of comparable factor size the UPDATE phase dominates. The dense
  // side uses MU: at this toy scale ADMM's fixed per-inner-iteration sync
  // cost would mask the size-driven effect the test probes (the scaled Fig-1
  // bench shows the ADMM version).
  PlancOptions opt;
  opt.rank = 8;
  opt.max_iterations = 1;
  opt.compute_fit = false;

  // Dense 40x30x20x15 tensor.
  PlancOptions dense_opt = opt;
  dense_opt.scheme = UpdateScheme::kMu;
  std::vector<index_t> dims{40, 30, 20, 15};
  Rng rng(12);
  DenseTensor dense(dims);
  for (index_t i = 0; i < dense.num_elements(); ++i) {
    dense.data()[i] = rng.uniform();
  }
  PlancDenseCpu planc_dense(std::move(dense), dense_opt);
  planc_dense.driver().initialize();
  planc_dense.driver().iterate();
  const auto& dense_phases = planc_dense.driver().modeled_phase_seconds();

  // Sparse tensor with long modes and few nonzeros.
  RandomTensorParams sparse_params;
  sparse_params.dims = {4000, 3000, 2000};
  sparse_params.target_nnz = 5000;
  sparse_params.seed = 13;
  const SparseTensor sparse = generate_random(sparse_params);
  PlancSparseCpu planc_sparse(sparse, opt);
  planc_sparse.driver().initialize();
  planc_sparse.driver().iterate();
  const auto& sparse_phases = planc_sparse.driver().modeled_phase_seconds();

  EXPECT_GT(dense_phases.at(phase::kMttkrp), dense_phases.at(phase::kUpdate));
  EXPECT_GT(sparse_phases.at(phase::kUpdate), sparse_phases.at(phase::kMttkrp));
}

}  // namespace
}  // namespace cstf
