// Execution-graph layer tests: OpGraph/Plan validation and analysis, the
// Executor's stream/event realization against hand-rolled choreography,
// plan-cache invalidation across the trainer / streaming / serving paths,
// and the stability of the persisted options digests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/digest.hpp"
#include "common/random.hpp"
#include "cstf/checkpoint.hpp"
#include "cstf/framework.hpp"
#include "exec/executor.hpp"
#include "exec/op_graph.hpp"
#include "exec/planner.hpp"
#include "serve/fold_in.hpp"
#include "serve/model_io.hpp"
#include "serve/model_store.hpp"
#include "serve/runtime.hpp"
#include "simgpu/device.hpp"
#include "streaming/streaming_cstf.hpp"
#include "tensor/coo.hpp"

namespace cstf {
namespace {

using exec::ExecContext;
using exec::Op;
using exec::OpGraph;
using exec::OpKind;
using exec::Plan;
using exec::PlanCache;
using exec::PlanKey;

void noop(ExecContext&) {}

Op make_op(const std::string& name, int lane, std::vector<int> deps) {
  Op op;
  op.name = name;
  op.lane = lane;
  op.deps = std::move(deps);
  op.run = noop;
  return op;
}

SparseTensor small_tensor(std::uint64_t seed = 7, index_t nnz = 60) {
  SparseTensor t({12, 10, 8});
  Rng rng(seed);
  for (index_t i = 0; i < nnz; ++i) {
    const index_t coords[3] = {
        static_cast<index_t>(rng.uniform_index(12)),
        static_cast<index_t>(rng.uniform_index(10)),
        static_cast<index_t>(rng.uniform_index(8))};
    t.append(coords, static_cast<real_t>(rng.uniform(0.1, 1.0)));
  }
  return t;
}

// ---------------------------------------------------------------------------
// OpGraph / Plan structural analysis.

TEST(OpGraph, RejectsForwardDepsBadBuffersAndBodylessOps) {
  OpGraph g;
  const int buf = g.add_buffer("b", 64.0);

  EXPECT_THROW(g.add_op(make_op("forward_dep", 0, {0})), Error);
  {
    Op op = make_op("bad_buffer", 0, {});
    op.reads = {buf + 1};
    EXPECT_THROW(g.add_op(std::move(op)), Error);
  }
  {
    Op op = make_op("no_body", 0, {});
    op.run = nullptr;
    EXPECT_THROW(g.add_op(std::move(op)), Error);
  }
  // A checkpoint barrier is a structural marker: no body required.
  {
    Op op = make_op("barrier", 0, {});
    op.kind = OpKind::kCheckpointBarrier;
    op.run = nullptr;
    EXPECT_EQ(g.add_op(std::move(op)), 0);
  }
  // Fixed-duration spans need no body either.
  {
    Op op = make_op("fixed", 0, {});
    op.run = nullptr;
    op.fixed_s = 0.5;
    EXPECT_EQ(g.add_op(std::move(op)), 1);
  }
}

TEST(Plan, DerivesLifetimesPeakAndEventNeeds) {
  OpGraph g;
  const int a = g.add_buffer("a", 100.0);
  const int b = g.add_buffer("b", 60.0);
  const int unused = g.add_buffer("unused", 1000.0);
  (void)unused;

  {
    Op op = make_op("produce_a", 0, {});
    op.writes = {a};
    g.add_op(std::move(op));
  }
  {
    Op op = make_op("side_lane", 1, {0});  // cross-lane dependent of op 0
    op.reads = {a};
    op.writes = {b};
    g.add_op(std::move(op));
  }
  {
    Op op = make_op("consume", 0, {1});
    op.reads = {b};
    g.add_op(std::move(op));
  }

  const Plan plan(std::move(g), {"default", "side"});
  ASSERT_EQ(plan.lifetimes().size(), 3u);
  EXPECT_EQ(plan.lifetimes()[0].first_use, 0);
  EXPECT_EQ(plan.lifetimes()[0].last_use, 1);
  EXPECT_EQ(plan.lifetimes()[1].first_use, 1);
  EXPECT_EQ(plan.lifetimes()[1].last_use, 2);
  EXPECT_EQ(plan.lifetimes()[2].first_use, -1);  // never touched

  // a and b are both live at op 1: peak is their sum (the unused buffer does
  // not contribute).
  EXPECT_DOUBLE_EQ(plan.peak_bytes(), 160.0);

  // Op 0 has a dependent on lane 1 -> event; op 1's dependent is cross-lane
  // too (lane 1 -> lane 0); op 2 has no dependents.
  EXPECT_TRUE(plan.needs_event(0));
  EXPECT_TRUE(plan.needs_event(1));
  EXPECT_FALSE(plan.needs_event(2));

  const std::string dump = plan.describe();
  EXPECT_NE(dump.find("produce_a"), std::string::npos);
  EXPECT_NE(dump.find("(event)"), std::string::npos);
  EXPECT_NE(dump.find("peak modeled device bytes"), std::string::npos);
}

TEST(Plan, RequiresDefaultLaneFirst) {
  OpGraph g;
  g.add_op(make_op("only", 0, {}));
  EXPECT_THROW(Plan(std::move(g), {"gram"}), Error);
}

// ---------------------------------------------------------------------------
// Executor vs hand-rolled stream choreography.

TEST(Executor, FixedPipelineMatchesHandRolledMakespan) {
  std::vector<exec::FixedModePhases> modes(3);
  for (std::size_t m = 0; m < modes.size(); ++m) {
    modes[m].gram_s = 0.004 + 0.001 * static_cast<double>(m);
    modes[m].mttkrp_s = 0.010;
    modes[m].update_s = 0.006;
    modes[m].normalize_s = 0.001;
  }

  // Hand-rolled: the overlap choreography the benches used to carry inline.
  simgpu::Device legacy(simgpu::a100());
  {
    const simgpu::Stream gram_stream = legacy.create_stream("gram");
    simgpu::Event prev_normalize;
    for (const exec::FixedModePhases& m : modes) {
      legacy.wait_event(gram_stream, prev_normalize);
      legacy.record_fixed("gram", m.gram_s, gram_stream);
      const simgpu::Event gram_done = legacy.record_event(gram_stream);
      legacy.record_fixed("mttkrp", m.mttkrp_s);
      legacy.wait_event(simgpu::Stream{}, gram_done);
      legacy.record_fixed("update", m.update_s);
      legacy.record_fixed("normalize", m.normalize_s);
      prev_normalize = legacy.record_event(simgpu::Stream{});
    }
  }

  simgpu::Device planned(simgpu::a100());
  exec::Executor executor(
      planned, std::make_shared<const Plan>(
                   exec::Planner::compile_fixed_pipeline(modes)));
  executor.run();

  EXPECT_TRUE(planned.timeline().concurrent());
  EXPECT_DOUBLE_EQ(planned.modeled_makespan_s(), legacy.modeled_makespan_s());
}

TEST(Executor, ChunkedAllReduceOverlapsCommunication) {
  exec::ChunkedAllReduceSpec spec;
  spec.shard_compute_s = {0.010, 0.012};
  spec.chunk_comm_s = 0.004;
  spec.chunks = 1;

  const auto makespan = [](const exec::ChunkedAllReduceSpec& s) {
    simgpu::Device dev(simgpu::a100());
    exec::Executor ex(dev, std::make_shared<const Plan>(
                               exec::Planner::compile_chunked_allreduce(s)));
    ex.run();
    return dev.modeled_makespan_s();
  };

  const double serial = makespan(spec);
  // One chunk: compute then communicate, no overlap.
  EXPECT_NEAR(serial, 0.012 + 0.004, 1e-12);

  spec.chunks = 4;
  spec.chunk_comm_s = 0.001;  // same total communication, 4 chunks
  const double overlapped = makespan(spec);
  EXPECT_LT(overlapped, serial);
  // Lower bound: the slowest shard's compute plus one trailing chunk comm.
  EXPECT_GE(overlapped, 0.012 + 0.001 - 1e-12);
}

TEST(Executor, RunsObserverHooksInIssueOrder) {
  OpGraph g;
  Op op1 = make_op("first", 0, {});
  op1.fixed_s = 0.001;
  op1.run = nullptr;
  g.add_op(std::move(op1));
  Op op2 = make_op("second", 0, {0});
  op2.fixed_s = 0.001;
  op2.run = nullptr;
  g.add_op(std::move(op2));

  class Recorder final : public exec::OpObserver {
   public:
    void on_op_begin(const Op& op, int index) override {
      names.push_back("begin:" + op.name);
      indices.push_back(index);
    }
    void on_op_end(const Op& op, int) override {
      names.push_back("end:" + op.name);
    }
    std::vector<std::string> names;
    std::vector<int> indices;
  };

  simgpu::Device dev(simgpu::a100());
  exec::Executor executor(
      dev, std::make_shared<const Plan>(Plan(std::move(g), {"default"})));
  Recorder recorder;
  executor.run(&recorder);
  ASSERT_EQ(recorder.names.size(), 4u);
  EXPECT_EQ(recorder.names[0], "begin:first");
  EXPECT_EQ(recorder.names[1], "end:first");
  EXPECT_EQ(recorder.names[2], "begin:second");
  EXPECT_EQ(recorder.names[3], "end:second");
  EXPECT_EQ(recorder.indices, (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------------------
// Plan-cache invalidation.

TEST(PlanCacheTest, HitsOnSameKeyRecompilesOnAnyFieldChange) {
  PlanCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    OpGraph g;
    g.add_op(make_op("op", 0, {}));
    return Plan(std::move(g), {"default"});
  };

  PlanKey key{1, 8, 42};
  EXPECT_FALSE(cache.cached());
  auto first = cache.get(key, build);
  auto again = cache.get(key, build);
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(builds, 1);

  PlanKey rank_change = key;
  rank_change.rank = 16;
  cache.get(rank_change, build);
  EXPECT_EQ(builds, 2);

  PlanKey options_change = rank_change;
  options_change.options_digest = 43;
  cache.get(options_change, build);
  EXPECT_EQ(builds, 3);

  PlanKey tensor_change = options_change;
  tensor_change.tensor_id = 2;
  cache.get(tensor_change, build);
  EXPECT_EQ(builds, 4);
  EXPECT_EQ(cache.misses(), 4);

  cache.clear();
  EXPECT_FALSE(cache.cached());
  cache.get(tensor_change, build);
  EXPECT_EQ(builds, 5);
}

TEST(PlanCacheTest, AuntfReusesPlanAcrossIterationsAndKeysOnOptions) {
  const SparseTensor t = small_tensor();
  FrameworkOptions opts;
  opts.rank = 4;
  opts.max_iterations = 3;
  CstfFramework framework(t, opts);

  framework.driver().initialize();
  framework.driver().iterate();
  EXPECT_EQ(framework.driver().plan_cache().misses(), 1);
  framework.driver().iterate();
  framework.driver().iterate();
  EXPECT_EQ(framework.driver().plan_cache().misses(), 1);
  EXPECT_GE(framework.driver().plan_cache().hits(), 2);

  // A rank change and a scatter-strategy change each produce a different
  // plan key — fed through a shared cache, each forces a recompile.
  FrameworkOptions rank_opts = opts;
  rank_opts.rank = 8;
  CstfFramework rank_changed(t, rank_opts);
  FrameworkOptions scatter_opts = opts;
  scatter_opts.scatter.strategy = ScatterStrategy::kSorted;
  CstfFramework scatter_changed(t, scatter_opts);

  const PlanKey base_key = framework.driver().plan_key();
  const PlanKey rank_key = rank_changed.driver().plan_key();
  const PlanKey scatter_key = scatter_changed.driver().plan_key();
  EXPECT_FALSE(base_key == rank_key);
  EXPECT_FALSE(base_key == scatter_key);
  EXPECT_NE(base_key.rank, rank_key.rank);
  // Scatter options feed the options digest (they change op-body behavior
  // without touching rank or tensor identity).
  EXPECT_NE(base_key.options_digest, scatter_key.options_digest);
}

TEST(PlanCacheTest, StreamingRecompilesWhenSliceNnzSetChanges) {
  StreamingOptions opt;
  opt.rank = 3;
  opt.seed = 11;
  StreamingCstf stream({10, 8}, opt);

  SparseTensor slice_a({10, 8});
  SparseTensor slice_b({10, 8});
  SparseTensor slice_wider({10, 8});
  Rng rng(3);
  for (index_t i = 0; i < 20; ++i) {
    const index_t coords[2] = {static_cast<index_t>(rng.uniform_index(10)),
                               static_cast<index_t>(rng.uniform_index(8))};
    slice_a.append(coords, 1.0);
    slice_b.append(coords, 0.5);
    slice_wider.append(coords, 0.25);
  }
  {
    const index_t extra[2] = {0, 0};
    slice_wider.append(extra, 1.0);  // different nonzero count
  }

  stream.ingest(slice_a);
  EXPECT_EQ(stream.plan_cache().misses(), 1);
  stream.ingest(slice_b);  // same nnz set size: the compiled plan is reused
  EXPECT_EQ(stream.plan_cache().misses(), 1);
  EXPECT_GE(stream.plan_cache().hits(), 1);
  stream.ingest(slice_wider);  // nnz change: recompile
  EXPECT_EQ(stream.plan_cache().misses(), 2);
}

TEST(PlanCacheTest, FoldInRecompilesOnSnapshotOrBatchShapeChange) {
  Rng rng(5);
  serve::SavedModel saved;
  saved.model.factors.emplace_back(9, 3);
  saved.model.factors.emplace_back(7, 3);
  saved.model.factors.emplace_back(5, 3);
  for (Matrix& f : saved.model.factors) f.fill_uniform(rng, 0.1, 1.0);
  saved.model.lambda = {1.0, 1.0, 1.0};
  saved.meta.set_constraint(Proximity::non_negative());

  serve::ModelStore store;
  serve::ServableModelPtr snap1 = store.publish(saved);
  serve::ServableModelPtr snap2 = store.publish(saved);  // new generation

  simgpu::Device device(simgpu::a100());
  serve::ServeRuntime runtime(device, global_pool());
  serve::FoldInEngine engine(runtime);

  serve::FoldInRequest req;
  req.mode = 0;
  req.coords = {2, 1};
  req.values = {0.7};

  engine.fold_in(*snap1, req);
  EXPECT_EQ(engine.plan_cache().misses(), 1);
  engine.fold_in(*snap1, req);  // same snapshot + shape: reuse
  EXPECT_EQ(engine.plan_cache().misses(), 1);
  EXPECT_GE(engine.plan_cache().hits(), 1);
  engine.fold_in_batch(*snap1, {req, req});  // batch-shape change
  EXPECT_EQ(engine.plan_cache().misses(), 2);
  engine.fold_in(*snap2, req);  // hot-swapped generation
  EXPECT_EQ(engine.plan_cache().misses(), 3);
}

// ---------------------------------------------------------------------------
// Digest stability: these values are persisted inside CSTFCKPT checkpoints
// and CSTF model files — changing them orphans existing artifacts. The
// golden constants pin the DigestBuilder encoding and the digest field
// lists; a deliberate format change must bump the file format versions.

TEST(DigestStability, BuilderEncodingIsPinned) {
  DigestBuilder d;
  d.u64(1).f64(2.0).boolean(true).str("x");
  EXPECT_EQ(d.value(), 0x7bb000e2d9cc7e34ULL);

  // Field order is part of the definition.
  DigestBuilder swapped;
  swapped.f64(2.0).u64(1).boolean(true).str("x");
  EXPECT_NE(swapped.value(), 0x7bb000e2d9cc7e34ULL);

  // An empty builder starts at the FNV-1a offset basis.
  EXPECT_EQ(DigestBuilder().value(), 0xcbf29ce484222325ULL);
}

TEST(DigestStability, TrainingDigestIgnoresConvergenceAndCheckpointKnobs) {
  FrameworkOptions base;
  // Pinned for checkpoint format v4 (v2 added mttkrp_mode, v3 added
  // dimtree_budget_bytes — under auto the budget decides which engine the
  // resolver picks, and flat vs dimtree differ in accumulation order —
  // and v4 added the autotuning policy, per-mode scatter picks, and the
  // parallel chunk knob, all of which shape fp accumulation order).
  EXPECT_EQ(digest_training_options(base), 0x82f78186c1f13b32ULL);

  FrameworkOptions resumable = base;
  resumable.max_iterations = 500;
  resumable.fit_tolerance = 1e-6;
  resumable.checkpoint_every = 2;
  resumable.checkpoint_path = "ckpt.cstf";
  resumable.resume_from = "old.cstf";
  resumable.pipeline_streams = true;  // modeling knob: same math
  EXPECT_EQ(digest_training_options(resumable), digest_training_options(base));

  FrameworkOptions different_rank = base;
  different_rank.rank = 16;
  EXPECT_NE(digest_training_options(different_rank),
            digest_training_options(base));
  FrameworkOptions different_seed = base;
  different_seed.seed = 43;
  EXPECT_NE(digest_training_options(different_seed),
            digest_training_options(base));
  FrameworkOptions different_scatter = base;
  different_scatter.scatter.strategy = ScatterStrategy::kSorted;
  EXPECT_NE(digest_training_options(different_scatter),
            digest_training_options(base));
  FrameworkOptions different_mttkrp = base;
  different_mttkrp.mttkrp_mode = MttkrpMode::kDimtree;
  EXPECT_NE(digest_training_options(different_mttkrp),
            digest_training_options(base));
  FrameworkOptions different_budget = base;
  different_budget.dimtree_budget_bytes = 1.0;
  EXPECT_NE(digest_training_options(different_budget),
            digest_training_options(base));
  FrameworkOptions different_policy = base;
  different_policy.tuning.policy = autotune::TuningPolicy::kMeasure;
  EXPECT_NE(digest_training_options(different_policy),
            digest_training_options(base));
  FrameworkOptions different_per_mode = base;
  different_per_mode.scatter.per_mode = {ScatterStrategy::kSorted,
                                         ScatterStrategy::kAtomic,
                                         ScatterStrategy::kPrivatized};
  EXPECT_NE(digest_training_options(different_per_mode),
            digest_training_options(base));
}

TEST(DigestStability, ServingDigestTracksEverythingThatChangesTheModel) {
  FrameworkOptions base;
  EXPECT_EQ(serve::digest_options(base), 0xf0eb40a20d81ccbeULL);

  // Unlike the checkpoint digest, the serving digest pins max_iterations —
  // two models trained for different iteration counts are different models.
  FrameworkOptions longer = base;
  longer.max_iterations = 50;
  EXPECT_NE(serve::digest_options(longer), serve::digest_options(base));
}

}  // namespace
}  // namespace cstf
