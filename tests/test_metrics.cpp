// Tests for the factor-match-score metric and its use as a recovery oracle,
// and for the process metrics registry (src/metrics/): instruments,
// snapshot isolation, quantile derivation, and both exposition formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "cstf/framework.hpp"
#include "cstf/metrics.hpp"
#include "metrics/catalog.hpp"
#include "metrics/exposition.hpp"
#include "metrics/registry.hpp"
#include "serve/serve_stats.hpp"
#include "simgpu/trace.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

KTensor random_ktensor(std::vector<index_t> dims, index_t rank,
                       std::uint64_t seed) {
  Rng rng(seed);
  KTensor kt;
  for (index_t dim : dims) {
    Matrix f(dim, rank);
    f.fill_uniform(rng, 0.1, 1.0);
    kt.factors.push_back(std::move(f));
  }
  kt.lambda.assign(static_cast<std::size_t>(rank), 1.0);
  return kt;
}

TEST(Metrics, SelfMatchIsOne) {
  const KTensor kt = random_ktensor({20, 15, 10}, 4, 1);
  EXPECT_NEAR(factor_match_score(kt, kt), 1.0, 1e-12);
}

TEST(Metrics, PermutedComponentsStillMatch) {
  const KTensor kt = random_ktensor({20, 15, 10}, 4, 2);
  KTensor permuted = kt;
  // Reverse the component order in every factor and lambda.
  for (auto& f : permuted.factors) {
    Matrix reordered(f.rows(), f.cols());
    for (index_t r = 0; r < f.cols(); ++r) {
      for (index_t i = 0; i < f.rows(); ++i) {
        reordered(i, r) = f(i, f.cols() - 1 - r);
      }
    }
    f = std::move(reordered);
  }
  std::reverse(permuted.lambda.begin(), permuted.lambda.end());
  EXPECT_NEAR(factor_match_score(kt, permuted), 1.0, 1e-12);
}

TEST(Metrics, ScaleIndifferenceViaLambdaAbsorption) {
  // Scaling a column and absorbing the scale into lambda leaves the model
  // (and its FMS against the original) unchanged.
  const KTensor kt = random_ktensor({12, 9}, 3, 3);
  KTensor scaled = kt;
  for (index_t i = 0; i < scaled.factors[0].rows(); ++i) {
    scaled.factors[0](i, 1) *= 4.0;
  }
  scaled.lambda[1] /= 4.0;
  EXPECT_NEAR(factor_match_score(kt, scaled), 1.0, 1e-9);
}

TEST(Metrics, UnrelatedModelsScoreLow) {
  const KTensor a = random_ktensor({200, 150, 100}, 6, 4);
  KTensor b = random_ktensor({200, 150, 100}, 6, 5);
  // Different lambdas magnify the penalty too.
  for (auto& l : b.lambda) l = 10.0;
  EXPECT_LT(factor_match_score(a, b), 0.6);
}

TEST(Metrics, CongruenceBounds) {
  const KTensor kt = random_ktensor({30, 20}, 3, 6);
  for (index_t r = 0; r < 3; ++r) {
    for (index_t s = 0; s < 3; ++s) {
      const double c = component_congruence(kt, r, kt, s);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0 + 1e-12);
    }
  }
  EXPECT_NEAR(component_congruence(kt, 1, kt, 1), 1.0, 1e-12);
}

TEST(Metrics, RecoversPlantedFactorsEndToEnd) {
  // The headline use: factorize a fully observed planted tensor and verify
  // the recovered model matches the planted one component-by-component.
  LowRankTensorParams gen;
  gen.dims = {22, 18, 14};
  gen.rank = 3;
  gen.target_nnz = 22 * 18 * 14;
  gen.noise = 0.005;
  gen.seed = 77;
  const LowRankTensor planted = generate_low_rank(gen);

  FrameworkOptions options;
  options.rank = 3;
  options.max_iterations = 60;
  options.fit_tolerance = 1e-7;
  options.scheme = UpdateScheme::kCuAdmm;
  CstfFramework framework(planted.tensor, options);
  const AuntfResult result = framework.run();
  ASSERT_GT(result.final_fit, 0.95);

  KTensor truth;
  truth.factors = planted.factors;
  truth.lambda.assign(3, 1.0);
  EXPECT_GT(factor_match_score(framework.ktensor(), truth), 0.9);
}

// ---------------------------------------------------------------------------
// Process metrics registry (src/metrics/).

TEST(MetricsRegistry, CounterConcurrentIncrementsSumExactly) {
  // 8 threads x 10k increments of +1 must sum to exactly 80000: integral
  // deltas are exact in a double-valued atomic counter up to 2^53. Run
  // under TSan in scripts/check.sh, this also proves the hot path is
  // race-free.
  metrics::MetricsRegistry reg;
  metrics::Counter* c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistry, CounterIgnoresNonPositiveAndRatchets) {
  metrics::Counter c;
  c.inc(5.0);
  c.inc(-3.0);  // ignored: counters never go down
  c.inc(0.0);   // ignored
  EXPECT_EQ(c.value(), 5.0);
  c.sync_to(12.0);
  EXPECT_EQ(c.value(), 12.0);
  c.sync_to(7.0);  // ratchet: lower cumulative value is a no-op
  EXPECT_EQ(c.value(), 12.0);
  c.sync_to(12.0);  // idempotent re-sync (periodic dumps)
  EXPECT_EQ(c.value(), 12.0);
}

TEST(MetricsRegistry, GaugeMovesBothWays) {
  metrics::Gauge g;
  g.set(4.0);
  g.add(2.0);
  g.add(-5.0);
  EXPECT_EQ(g.value(), 1.0);
}

TEST(MetricsRegistry, HistogramBucketBoundariesHandComputed) {
  // Bounds {1, 2, 4}: le-semantics puts v exactly on a bound into that
  // bound's bucket; above the last bound lands in the overflow bucket.
  metrics::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (le: v <= bound)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(3.9);   // bucket 2
  h.observe(4.0);   // bucket 2
  h.observe(4.1);   // overflow
  h.observe(100.0); // overflow
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 8);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.9 + 4.0 + 4.1 + 100.0);
}

TEST(MetricsRegistry, DefaultBoundsShapes) {
  const std::vector<double> lat = metrics::default_latency_bounds();
  ASSERT_EQ(lat.size(), 24u);
  EXPECT_DOUBLE_EQ(lat.front(), 1e-6);
  for (std::size_t i = 1; i < lat.size(); ++i) {
    EXPECT_DOUBLE_EQ(lat[i], 2.0 * lat[i - 1]);
  }
  const std::vector<double> cnt = metrics::default_count_bounds();
  ASSERT_EQ(cnt.size(), 9u);
  EXPECT_DOUBLE_EQ(cnt.front(), 1.0);
  EXPECT_DOUBLE_EQ(cnt.back(), 256.0);
}

TEST(MetricsRegistry, RegistryReturnsSameInstrumentForSameKey) {
  metrics::MetricsRegistry reg;
  metrics::Counter* a = reg.counter("x.y", {{"k", "v"}});
  metrics::Counter* b = reg.counter("x.y", {{"k", "v"}});
  EXPECT_EQ(a, b);
  metrics::Counter* other_label = reg.counter("x.y", {{"k", "w"}});
  EXPECT_NE(a, other_label);
  EXPECT_EQ(reg.size(), 2u);
  // Same key re-requested as a different type throws.
  EXPECT_THROW(reg.gauge("x.y", {{"k", "v"}}), Error);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterMutation) {
  metrics::MetricsRegistry reg;
  metrics::Counter* c = reg.counter("iso.counter");
  metrics::Histogram* h = reg.histogram("iso.hist", {}, {1.0, 2.0});
  c->inc(3.0);
  h->observe(0.5);
  const metrics::MetricsSnapshot snap = reg.snapshot();
  c->inc(100.0);
  h->observe(0.5);
  h->observe(1.5);
  ASSERT_EQ(snap.instruments.size(), 2u);
  EXPECT_EQ(snap.instruments[0].name, "iso.counter");
  EXPECT_EQ(snap.instruments[0].value, 3.0);
  EXPECT_EQ(snap.instruments[1].name, "iso.hist");
  EXPECT_EQ(snap.instruments[1].histogram.count, 1);
  EXPECT_EQ(snap.instruments[1].histogram.counts[0], 1);
}

TEST(MetricsRegistry, HistogramQuantileEdges) {
  metrics::HistogramData empty;
  empty.bounds = {1.0, 2.0};
  empty.counts = {0, 0, 0};
  EXPECT_EQ(metrics::histogram_quantile(empty, 0.5), 0.0);

  // One observation in the first bucket: every quantile is that bucket's
  // upper bound.
  metrics::HistogramData one = empty;
  one.counts = {1, 0, 0};
  one.count = 1;
  EXPECT_EQ(metrics::histogram_quantile(one, 0.0), 1.0);
  EXPECT_EQ(metrics::histogram_quantile(one, 0.5), 1.0);
  EXPECT_EQ(metrics::histogram_quantile(one, 1.0), 1.0);

  // Overflow rank returns the last finite bound.
  metrics::HistogramData overflow = empty;
  overflow.counts = {0, 0, 3};
  overflow.count = 3;
  EXPECT_EQ(metrics::histogram_quantile(overflow, 0.99), 2.0);
}

TEST(MetricsRegistry, PrometheusExpositionGolden) {
  metrics::MetricsRegistry reg;
  reg.counter("serve.requests", {{"outcome", "served"}})->inc(42.0);
  reg.gauge("serve.batcher.queue_depth")->set(3.0);
  metrics::Histogram* h = reg.histogram("exec.op.duration",
                                        {{"kind", "mttkrp"}}, {0.5, 1.0});
  h->observe(0.25);
  h->observe(0.75);
  h->observe(2.0);
  const std::string text = metrics::to_prometheus(reg.snapshot());
  // Snapshot order is (name, labels): exec.op.duration, then
  // serve.batcher.queue_depth, then serve.requests.
  const std::string expected =
      "# HELP cstf_exec_op_duration Executor per-op wall time by op kind.\n"
      "# TYPE cstf_exec_op_duration histogram\n"
      "cstf_exec_op_duration_bucket{kind=\"mttkrp\",le=\"0.5\"} 1\n"
      "cstf_exec_op_duration_bucket{kind=\"mttkrp\",le=\"1\"} 2\n"
      "cstf_exec_op_duration_bucket{kind=\"mttkrp\",le=\"+Inf\"} 3\n"
      "cstf_exec_op_duration_sum{kind=\"mttkrp\"} 3\n"
      "cstf_exec_op_duration_count{kind=\"mttkrp\"} 3\n"
      "# HELP cstf_serve_batcher_queue_depth Fold-in requests currently "
      "queued in the batcher.\n"
      "# TYPE cstf_serve_batcher_queue_depth gauge\n"
      "cstf_serve_batcher_queue_depth 3\n"
      "# HELP cstf_serve_requests Serve requests by outcome (submitted|"
      "served|shed|timed_out|retried|degraded|failed).\n"
      "# TYPE cstf_serve_requests counter\n"
      "cstf_serve_requests{outcome=\"served\"} 42\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistry, JsonExpositionParsesStrict) {
  metrics::MetricsRegistry reg;
  reg.counter("a.count")->inc(7.0);
  reg.histogram("a.lat", {}, {1.0})->observe(0.5);
  const std::string doc = metrics::to_json(reg.snapshot());
  const simgpu::json::Value parsed = simgpu::json::parse(doc);
  const simgpu::json::Value* list = parsed.find("metrics");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 2u);
  EXPECT_EQ(list->array[0].find("name")->str, "a.count");
  EXPECT_EQ(list->array[0].find("value")->num, 7.0);
  EXPECT_EQ(list->array[1].find("count")->num, 1.0);
  EXPECT_EQ(list->array[1].find("p50")->num, 1.0);
}

TEST(MetricsRegistry, FlattenMatchesJsonSessionExtrasShape) {
  metrics::MetricsRegistry reg;
  reg.counter("c.one", {{"k", "v"}})->inc(2.0);
  reg.histogram("h.lat", {}, {1.0, 2.0})->observe(1.5);
  const auto extras = metrics::flatten(reg.snapshot());
  ASSERT_EQ(extras.size(), 6u);  // 1 counter + count/sum/p50/p95/p99
  EXPECT_EQ(extras[0].first, "c.one{k=v}");
  EXPECT_EQ(extras[0].second, 2.0);
  EXPECT_EQ(extras[1].first, "h.lat.count");
  EXPECT_EQ(extras[1].second, 1.0);
}

TEST(MetricsRegistry, CatalogCoversEveryRegisteredName) {
  // The global registry has been populated by the library constructors and
  // hot paths other tests in this binary exercised; every name the codebase
  // registers must be cataloged (help text is the contract with
  // cstf_info --metrics and docs/METRICS.md).
  metrics::MetricsRegistry::global().counter("serve.requests",
                                             {{"outcome", "served"}});
  const metrics::MetricsSnapshot snap =
      metrics::MetricsRegistry::global().snapshot();
  EXPECT_FALSE(snap.instruments.empty());
  for (const auto& inst : snap.instruments) {
    const metrics::CatalogEntry* e = metrics::find_catalog_entry(inst.name);
    ASSERT_NE(e, nullptr) << "uncataloged metric: " << inst.name;
    EXPECT_EQ(e->type, inst.type) << inst.name;
    EXPECT_FALSE(inst.help.empty()) << inst.name;
  }
  // And the catalog's sort invariant that find_catalog_entry relies on.
  std::size_t count = 0;
  const metrics::CatalogEntry* entries = metrics::catalog_entries(&count);
  for (std::size_t i = 1; i < count; ++i) {
    EXPECT_LT(std::string(entries[i - 1].name), std::string(entries[i].name));
  }
}

TEST(MetricsRegistry, WriteTextAtomicReplacesFile) {
  const std::string path =
      ::testing::TempDir() + "/cstf_metrics_atomic_test.prom";
  metrics::write_text_atomic(path, "first\n");
  metrics::write_text_atomic(path, "second\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second\n");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// LatencyRecorder quantile edges + histogram-derived equivalence.

TEST(LatencyRecorder, EmptyRecorderQuantilesAreZero) {
  serve::LatencyRecorder rec;
  EXPECT_EQ(rec.quantile(0.0), 0.0);
  EXPECT_EQ(rec.quantile(0.5), 0.0);
  EXPECT_EQ(rec.quantile(1.0), 0.0);
  const serve::LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.p50_s, 0.0);
  EXPECT_EQ(s.p95_s, 0.0);
  EXPECT_EQ(s.p99_s, 0.0);
  EXPECT_EQ(s.max_s, 0.0);
}

TEST(LatencyRecorder, SingleSampleIsEveryQuantile) {
  serve::LatencyRecorder rec;
  rec.record(0.125);
  EXPECT_EQ(rec.quantile(0.0), 0.125);
  EXPECT_EQ(rec.quantile(0.5), 0.125);
  EXPECT_EQ(rec.quantile(0.99), 0.125);
  EXPECT_EQ(rec.quantile(1.0), 0.125);
  const serve::LatencySummary s = rec.summary();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.p50_s, 0.125);
  EXPECT_EQ(s.p99_s, 0.125);
  EXPECT_EQ(s.max_s, 0.125);
}

TEST(LatencyRecorder, HistogramDerivedQuantileBoundsExact) {
  // An attached registry histogram sees the same samples; its derived
  // quantile is the upper bound of the bucket holding the exact quantile —
  // so exact <= derived <= 2x exact on the power-of-two latency ladder
  // (for samples within the finite bucket range).
  metrics::MetricsRegistry reg;
  metrics::Histogram* h = reg.histogram("test.lat");
  serve::LatencyRecorder rec;
  rec.attach(h);
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    rec.record(1e-5 * (1.0 + 100.0 * rng.uniform()));
  }
  rec.attach(nullptr);
  const metrics::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.instruments.size(), 1u);
  const metrics::HistogramData& hd = snap.instruments[0].histogram;
  EXPECT_EQ(hd.count, 1000);
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact = rec.quantile(q);
    const double derived = metrics::histogram_quantile(hd, q);
    EXPECT_GE(derived, exact) << "q=" << q;
    EXPECT_LE(derived, 2.0 * exact) << "q=" << q;
  }
}

TEST(ServeStats, ExportReliabilityRatchetsOutcomeCounters) {
  serve::ReliabilitySnapshot s;
  s.submitted = 10;
  s.served = 8;
  s.shed = 1;
  s.retries = 3;
  serve::export_reliability(s);
  auto& reg = metrics::MetricsRegistry::global();
  EXPECT_GE(reg.counter("serve.requests", {{"outcome", "submitted"}})->value(),
            10.0);
  EXPECT_GE(reg.counter("serve.requests", {{"outcome", "retried"}})->value(),
            3.0);
  // Re-export of the same snapshot must not double-count.
  const double before =
      reg.counter("serve.requests", {{"outcome", "shed"}})->value();
  serve::export_reliability(s);
  EXPECT_EQ(reg.counter("serve.requests", {{"outcome", "shed"}})->value(),
            before);
}

}  // namespace
}  // namespace cstf
