// Tests for the factor-match-score metric and its use as a recovery oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "cstf/framework.hpp"
#include "cstf/metrics.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

KTensor random_ktensor(std::vector<index_t> dims, index_t rank,
                       std::uint64_t seed) {
  Rng rng(seed);
  KTensor kt;
  for (index_t dim : dims) {
    Matrix f(dim, rank);
    f.fill_uniform(rng, 0.1, 1.0);
    kt.factors.push_back(std::move(f));
  }
  kt.lambda.assign(static_cast<std::size_t>(rank), 1.0);
  return kt;
}

TEST(Metrics, SelfMatchIsOne) {
  const KTensor kt = random_ktensor({20, 15, 10}, 4, 1);
  EXPECT_NEAR(factor_match_score(kt, kt), 1.0, 1e-12);
}

TEST(Metrics, PermutedComponentsStillMatch) {
  const KTensor kt = random_ktensor({20, 15, 10}, 4, 2);
  KTensor permuted = kt;
  // Reverse the component order in every factor and lambda.
  for (auto& f : permuted.factors) {
    Matrix reordered(f.rows(), f.cols());
    for (index_t r = 0; r < f.cols(); ++r) {
      for (index_t i = 0; i < f.rows(); ++i) {
        reordered(i, r) = f(i, f.cols() - 1 - r);
      }
    }
    f = std::move(reordered);
  }
  std::reverse(permuted.lambda.begin(), permuted.lambda.end());
  EXPECT_NEAR(factor_match_score(kt, permuted), 1.0, 1e-12);
}

TEST(Metrics, ScaleIndifferenceViaLambdaAbsorption) {
  // Scaling a column and absorbing the scale into lambda leaves the model
  // (and its FMS against the original) unchanged.
  const KTensor kt = random_ktensor({12, 9}, 3, 3);
  KTensor scaled = kt;
  for (index_t i = 0; i < scaled.factors[0].rows(); ++i) {
    scaled.factors[0](i, 1) *= 4.0;
  }
  scaled.lambda[1] /= 4.0;
  EXPECT_NEAR(factor_match_score(kt, scaled), 1.0, 1e-9);
}

TEST(Metrics, UnrelatedModelsScoreLow) {
  const KTensor a = random_ktensor({200, 150, 100}, 6, 4);
  KTensor b = random_ktensor({200, 150, 100}, 6, 5);
  // Different lambdas magnify the penalty too.
  for (auto& l : b.lambda) l = 10.0;
  EXPECT_LT(factor_match_score(a, b), 0.6);
}

TEST(Metrics, CongruenceBounds) {
  const KTensor kt = random_ktensor({30, 20}, 3, 6);
  for (index_t r = 0; r < 3; ++r) {
    for (index_t s = 0; s < 3; ++s) {
      const double c = component_congruence(kt, r, kt, s);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0 + 1e-12);
    }
  }
  EXPECT_NEAR(component_congruence(kt, 1, kt, 1), 1.0, 1e-12);
}

TEST(Metrics, RecoversPlantedFactorsEndToEnd) {
  // The headline use: factorize a fully observed planted tensor and verify
  // the recovered model matches the planted one component-by-component.
  LowRankTensorParams gen;
  gen.dims = {22, 18, 14};
  gen.rank = 3;
  gen.target_nnz = 22 * 18 * 14;
  gen.noise = 0.005;
  gen.seed = 77;
  const LowRankTensor planted = generate_low_rank(gen);

  FrameworkOptions options;
  options.rank = 3;
  options.max_iterations = 60;
  options.fit_tolerance = 1e-7;
  options.scheme = UpdateScheme::kCuAdmm;
  CstfFramework framework(planted.tensor, options);
  const AuntfResult result = framework.run();
  ASSERT_GT(result.final_fit, 0.95);

  KTensor truth;
  truth.factors = planted.factors;
  truth.lambda.assign(3, 1.0);
  EXPECT_GT(factor_match_score(framework.ktensor(), truth), 0.9);
}

}  // namespace
}  // namespace cstf
