// Unit tests for src/formats: bit packing, linearization, CSF, ALTO, BLCO.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "formats/alto.hpp"
#include "formats/bitpack.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "formats/linearize.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor random_tensor(std::vector<index_t> dims, index_t nnz,
                           std::uint64_t seed) {
  RandomTensorParams params;
  params.dims = std::move(dims);
  params.target_nnz = nnz;
  params.seed = seed;
  return generate_random(params);
}

// Collects (coords -> value) from a COO tensor for set-equality checks.
std::map<std::vector<index_t>, real_t> as_map(const SparseTensor& t) {
  std::map<std::vector<index_t>, real_t> out;
  for (index_t i = 0; i < t.nnz(); ++i) {
    std::vector<index_t> coords(static_cast<std::size_t>(t.num_modes()));
    for (int m = 0; m < t.num_modes(); ++m) {
      coords[static_cast<std::size_t>(m)] =
          t.indices(m)[static_cast<std::size_t>(i)];
    }
    out[coords] += t.values()[static_cast<std::size_t>(i)];
  }
  return out;
}

TEST(BitPack, BitsForBoundaries) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(1ULL << 32), 32);
  EXPECT_EQ(bits_for((1ULL << 32) + 1), 33);
}

TEST(BitPack, RoundTripNarrowWidth) {
  BitWriter w(5);
  for (std::uint64_t v = 0; v < 32; ++v) w.push(v);
  const auto words = w.take();
  BitReader r(words.data(), 5);
  for (std::uint64_t v = 0; v < 32; ++v) EXPECT_EQ(r.get(v), v);
}

TEST(BitPack, RoundTripAcrossWordBoundaries) {
  // width 13 guarantees codes straddling 64-bit word boundaries.
  BitWriter w(13);
  std::vector<std::uint64_t> values;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.uniform_index(1u << 13));
    w.push(values.back());
  }
  const auto words = w.take();
  BitReader r(words.data(), 13);
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(r.get(i), values[i]);
}

TEST(BitPack, RoundTripFullWidth64) {
  BitWriter w(64);
  const std::uint64_t big = ~std::uint64_t{0} - 5;
  w.push(big);
  w.push(0);
  w.push(12345);
  const auto words = w.take();
  BitReader r(words.data(), 64);
  EXPECT_EQ(r.get(0), big);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(2), 12345u);
}

TEST(BitPack, OverwideValueThrows) {
  BitWriter w(3);
  EXPECT_THROW(w.push(8), Error);
}

TEST(Linearize, RoundTripsEveryCoordinate) {
  LinearizedEncoding enc({5, 9, 3});
  index_t coords[3], back[3];
  std::set<lco_t> seen;
  for (coords[0] = 0; coords[0] < 5; ++coords[0]) {
    for (coords[1] = 0; coords[1] < 9; ++coords[1]) {
      for (coords[2] = 0; coords[2] < 3; ++coords[2]) {
        const lco_t lco = enc.encode(coords);
        EXPECT_TRUE(seen.insert(lco).second) << "lco collision";
        enc.decode_all(lco, back);
        EXPECT_EQ(back[0], coords[0]);
        EXPECT_EQ(back[1], coords[1]);
        EXPECT_EQ(back[2], coords[2]);
      }
    }
  }
}

TEST(Linearize, BitBudgetMatchesDims) {
  LinearizedEncoding enc({1024, 17, 2});
  EXPECT_EQ(enc.mode_bits(0), 10);
  EXPECT_EQ(enc.mode_bits(1), 5);
  EXPECT_EQ(enc.mode_bits(2), 1);
  EXPECT_EQ(enc.total_bits(), 16);
  // Masks are disjoint and cover total_bits positions.
  lco_t all = 0;
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(all & enc.mode_mask(m), 0u);
    all |= enc.mode_mask(m);
  }
  EXPECT_EQ(__builtin_popcountll(all), 16);
}

TEST(Linearize, OverflowingBitBudgetThrows) {
  // 4 modes x 17 bits = 68 bits > 64.
  EXPECT_THROW(LinearizedEncoding({100000, 100000, 100000, 100000}),
               Error);
}

TEST(Linearize, InterleavingPreservesLocality) {
  // Adjacent coordinates in any single mode must differ only in that mode's
  // mask bits.
  LinearizedEncoding enc({64, 64});
  index_t a[2] = {10, 20};
  index_t b[2] = {11, 20};
  EXPECT_EQ((enc.encode(a) ^ enc.encode(b)) & ~enc.mode_mask(0), 0u);
}

TEST(Linearize, ModeMajorRoundTripsEveryCoordinate) {
  LinearizedEncoding enc({5, 9, 3}, BitOrder::kModeMajor);
  index_t coords[3], back[3];
  for (coords[0] = 0; coords[0] < 5; ++coords[0]) {
    for (coords[1] = 0; coords[1] < 9; ++coords[1]) {
      for (coords[2] = 0; coords[2] < 3; ++coords[2]) {
        enc.decode_all(enc.encode(coords), back);
        EXPECT_EQ(back[0], coords[0]);
        EXPECT_EQ(back[1], coords[1]);
        EXPECT_EQ(back[2], coords[2]);
      }
    }
  }
}

TEST(Linearize, ModeMajorOrderMatchesLexicographic) {
  // Mode-major linearized values sort exactly like mode-0-first
  // lexicographic coordinates.
  LinearizedEncoding enc({4, 4, 4}, BitOrder::kModeMajor);
  index_t a[3] = {1, 3, 3};
  index_t b[3] = {2, 0, 0};
  EXPECT_LT(enc.encode(a), enc.encode(b));
  index_t c[3] = {1, 2, 3};
  index_t d[3] = {1, 3, 0};
  EXPECT_LT(enc.encode(c), enc.encode(d));
}

TEST(Blco, BothBitOrdersReconstructIdentically) {
  SparseTensor t = random_tensor({50, 40, 30}, 2000, 12);
  for (BitOrder order : {BitOrder::kInterleaved, BitOrder::kModeMajor}) {
    const BlcoTensor blco(t, 256, order);
    EXPECT_EQ(blco.nnz(), t.nnz());
    auto want = as_map(t);
    index_t coords[kMaxModes];
    for (index_t b = 0; b < blco.num_blocks(); ++b) {
      const BlcoBlock& blk = blco.block(b);
      for (index_t i = 0; i < blk.count; ++i) {
        blco.encoding().decode_all(blco.element_lco(blk, i), coords);
        std::vector<index_t> key(coords, coords + 3);
        ASSERT_TRUE(want.count(key));
      }
    }
  }
}

TEST(Csf, BuildsCorrectTreeForKnownTensor) {
  SparseTensor t({3, 2, 2});
  t.append({0, 0, 0}, 1.0);
  t.append({0, 1, 0}, 2.0);
  t.append({0, 1, 1}, 3.0);
  t.append({2, 0, 1}, 4.0);
  CsfTensor csf(t, /*root_mode=*/0);
  EXPECT_EQ(csf.num_modes(), 3);
  EXPECT_EQ(csf.nnz(), 4);
  // Two distinct root indices: 0 and 2.
  ASSERT_EQ(csf.num_nodes(0), 2);
  EXPECT_EQ(csf.fids(0)[0], 0);
  EXPECT_EQ(csf.fids(0)[1], 2);
  // Root 0 has mid-level children {0,1}; root 2 has {0}.
  ASSERT_EQ(csf.num_nodes(1), 3);
  EXPECT_EQ(csf.fptr(0)[0], 0);
  EXPECT_EQ(csf.fptr(0)[1], 2);
  EXPECT_EQ(csf.fptr(0)[2], 3);
  // Leaf level holds all 4 entries.
  ASSERT_EQ(csf.num_nodes(2), 4);
  EXPECT_EQ(csf.fptr(1).back(), 4);
}

TEST(Csf, RootModeSelectionReordersModes) {
  SparseTensor t = random_tensor({10, 20, 5}, 200, 3);
  CsfTensor csf(t, /*root_mode=*/2);
  EXPECT_EQ(csf.root_mode(), 2);
  EXPECT_EQ(csf.mode_order()[0], 2);
  EXPECT_EQ(csf.mode_order()[1], 0);
  EXPECT_EQ(csf.mode_order()[2], 1);
  // Root fids must be strictly increasing (distinct, sorted).
  const auto& roots = csf.fids(0);
  for (std::size_t i = 1; i < roots.size(); ++i) {
    EXPECT_LT(roots[i - 1], roots[i]);
  }
}

TEST(Csf, ChildRangesPartitionEachLevel) {
  SparseTensor t = random_tensor({30, 40, 20, 10}, 1000, 4);
  CsfTensor csf(t, 1);
  for (int l = 0; l < csf.num_modes() - 1; ++l) {
    const auto& fptr = csf.fptr(l);
    ASSERT_EQ(static_cast<index_t>(fptr.size()), csf.num_nodes(l) + 1);
    EXPECT_EQ(fptr.front(), 0);
    EXPECT_EQ(fptr.back(), csf.num_nodes(l + 1));
    for (std::size_t i = 1; i < fptr.size(); ++i) {
      EXPECT_LT(fptr[i - 1], fptr[i]);  // every node has >= 1 child
    }
  }
}

TEST(Csf, StorageSmallerThanCooForClusteredTensors) {
  // Heavy skew -> long fibers -> CSF compresses the upper levels.
  RandomTensorParams params;
  params.dims = {100, 100, 100};
  params.target_nnz = 20000;
  params.mode_dist = {{1.5}, {1.5}, {1.5}};
  params.seed = 5;
  SparseTensor t = generate_random(params);
  CsfTensor csf(t, 0);
  const double coo_bytes =
      static_cast<double>(t.nnz()) * (3 * sizeof(index_t) + sizeof(real_t));
  EXPECT_LT(csf.storage_bytes(), coo_bytes);
}

TEST(Alto, PreservesAllNonzeros) {
  SparseTensor t = random_tensor({50, 30, 20}, 2000, 6);
  AltoTensor alto(t);
  EXPECT_EQ(alto.nnz(), t.nnz());  // generator already merged duplicates
  EXPECT_EQ(as_map(t).size(), static_cast<std::size_t>(alto.nnz()));
  // Decode every element and compare against the COO content.
  auto want = as_map(t);
  index_t coords[kMaxModes];
  for (index_t i = 0; i < alto.nnz(); ++i) {
    alto.encoding().decode_all(alto.linearized()[static_cast<std::size_t>(i)],
                               coords);
    std::vector<index_t> key(coords, coords + 3);
    ASSERT_TRUE(want.count(key));
    EXPECT_DOUBLE_EQ(want[key], alto.values()[static_cast<std::size_t>(i)]);
  }
}

TEST(Alto, LinearizedStreamIsSorted) {
  SparseTensor t = random_tensor({64, 64, 64}, 3000, 7);
  AltoTensor alto(t);
  const auto& lcos = alto.linearized();
  for (std::size_t i = 1; i < lcos.size(); ++i) {
    EXPECT_LT(lcos[i - 1], lcos[i]);  // strictly: duplicates were merged
  }
}

TEST(Alto, MergesDuplicateCoordinates) {
  SparseTensor t({4, 4});
  t.append({1, 2}, 1.0);
  t.append({1, 2}, 2.0);
  t.append({0, 0}, 5.0);
  AltoTensor alto(t);
  EXPECT_EQ(alto.nnz(), 2);
  EXPECT_DOUBLE_EQ(alto.values()[0], 5.0);  // (0,0) linearizes lowest
  EXPECT_DOUBLE_EQ(alto.values()[1], 3.0);
}

TEST(Blco, ReconstructsEveryElement) {
  SparseTensor t = random_tensor({40, 60, 25}, 3000, 8);
  BlcoTensor blco(t, /*block_capacity=*/256);
  auto want = as_map(t);
  index_t coords[kMaxModes];
  index_t seen = 0;
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    const BlcoBlock& blk = blco.block(b);
    for (index_t i = 0; i < blk.count; ++i) {
      blco.encoding().decode_all(blco.element_lco(blk, i), coords);
      std::vector<index_t> key(coords, coords + 3);
      ASSERT_TRUE(want.count(key));
      EXPECT_DOUBLE_EQ(
          want[key],
          blco.values()[static_cast<std::size_t>(blk.value_offset + i)]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, blco.nnz());
  EXPECT_EQ(blco.nnz(), t.nnz());
}

TEST(Blco, BlockCapacityIsRespected) {
  SparseTensor t = random_tensor({100, 100}, 5000, 9);
  BlcoTensor blco(t, 128);
  EXPECT_EQ(blco.num_blocks(), (blco.nnz() + 127) / 128);
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    EXPECT_LE(blco.block(b).count, 128);
    EXPECT_GT(blco.block(b).count, 0);
  }
}

TEST(Blco, DeltaCompressionShrinksStorage) {
  SparseTensor t = random_tensor({256, 256, 256}, 30000, 10);
  BlcoTensor blco(t, 4096);
  const double coo_index_bytes =
      static_cast<double>(t.nnz()) * 3 * sizeof(index_t);
  const double value_bytes = static_cast<double>(t.nnz()) * sizeof(real_t);
  // Delta-packed indices must be much smaller than 3x8-byte COO indices.
  EXPECT_LT(blco.storage_bytes() - value_bytes, 0.5 * coo_index_bytes);
}

TEST(Blco, SingleBlockDegenerateCase) {
  SparseTensor t({8, 8});
  t.append({0, 0}, 1.0);
  t.append({7, 7}, 2.0);
  BlcoTensor blco(t, 4096);
  EXPECT_EQ(blco.num_blocks(), 1);
  EXPECT_EQ(blco.block(0).count, 2);
}

TEST(Blco, VastLikeTwoLengthModeSurvives) {
  // Mirrors the Vast tensor's mode of length 2.
  SparseTensor t = random_tensor({500, 100, 2}, 2000, 11);
  BlcoTensor blco(t, 512);
  index_t coords[kMaxModes];
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    const BlcoBlock& blk = blco.block(b);
    for (index_t i = 0; i < blk.count; ++i) {
      blco.encoding().decode_all(blco.element_lco(blk, i), coords);
      ASSERT_GE(coords[2], 0);
      ASSERT_LT(coords[2], 2);
    }
  }
}

}  // namespace
}  // namespace cstf
