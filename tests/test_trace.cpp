// Tests for the tracing/telemetry subsystem: span recording and phase
// nesting, per-kernel aggregation (which must match the Device's own
// counters exactly), the chrome://tracing and bench-JSON exporters, the JSON
// parser, and CSTF_BENCH_JSON-driven emission from a bench JsonSession.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "simgpu/device.hpp"
#include "simgpu/launch.hpp"
#include "simgpu/trace.hpp"

namespace cstf {
namespace {

using simgpu::Tracer;
namespace json = simgpu::json;

simgpu::KernelStats make_stats(double flops, double bytes, int launches = 1) {
  simgpu::KernelStats s;
  s.flops = flops;
  s.bytes_streamed = bytes;
  s.parallel_items = 64.0;
  s.launches = launches;
  return s;
}

TEST(Tracer, RecordsSpansWithPhasePath) {
  Tracer tracer;
  EXPECT_EQ(tracer.current_phase(), "");
  tracer.add_span("bare", make_stats(1, 8), 0.0, 1e-6);
  {
    simgpu::ScopedPhase outer(&tracer, "UPDATE");
    EXPECT_EQ(tracer.current_phase(), "UPDATE");
    tracer.add_span("k1", make_stats(10, 80), 0.0, 1e-6);
    {
      simgpu::ScopedPhase inner(&tracer, "inner");
      EXPECT_EQ(tracer.current_phase(), "UPDATE/inner");
      EXPECT_EQ(tracer.phase_depth(), 2u);
      tracer.add_span("k2", make_stats(20, 160), 0.0, 1e-6);
    }
    EXPECT_EQ(tracer.current_phase(), "UPDATE");
  }
  EXPECT_EQ(tracer.current_phase(), "");
  EXPECT_EQ(tracer.phase_depth(), 0u);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].kernel, "bare");
  EXPECT_EQ(spans[0].phase, "");
  EXPECT_EQ(spans[1].phase, "UPDATE");
  EXPECT_EQ(spans[2].phase, "UPDATE/inner");
  ASSERT_EQ(tracer.phase_spans().size(), 2u);  // inner closed first
  EXPECT_EQ(tracer.phase_spans()[0].phase, "UPDATE/inner");
}

TEST(Tracer, NullTracerScopedPhaseIsNoOp) {
  simgpu::ScopedPhase p(nullptr, "UPDATE");  // must not crash
}

TEST(Tracer, AggregationMatchesDeviceCountersExactly) {
  // The acceptance bar for --profile: the tracer's per-kernel flops/bytes/
  // launches must equal the Device's own per-kernel counters, bit for bit,
  // because both sum with KernelStats::operator+=.
  simgpu::Device dev(simgpu::a100());
  Tracer tracer;
  dev.set_tracer(&tracer);

  dev.record("a", make_stats(3.5, 24.0));
  dev.record("b", make_stats(100.0, 800.0, 2));
  dev.record("a", make_stats(1.25, 16.0));
  dev.record("a", make_stats(0.5, 8.0));

  const auto agg = tracer.per_kernel();
  ASSERT_EQ(agg.size(), dev.per_kernel().size());
  for (const auto& [name, stats] : dev.per_kernel()) {
    ASSERT_TRUE(agg.count(name)) << name;
    const simgpu::KernelStats& t = agg.at(name).stats;
    EXPECT_EQ(t.flops, stats.flops) << name;
    EXPECT_EQ(t.bytes_streamed, stats.bytes_streamed) << name;
    EXPECT_EQ(t.bytes_reused, stats.bytes_reused) << name;
    EXPECT_EQ(t.bytes_random, stats.bytes_random) << name;
    EXPECT_EQ(t.launches, stats.launches) << name;
    EXPECT_EQ(t.parallel_items, stats.parallel_items) << name;
  }
  EXPECT_EQ(agg.at("a").spans, 3);
  EXPECT_EQ(agg.at("b").spans, 1);

  // Per-span modeled time sums to the per-kernel aggregate and the total.
  double modeled = 0.0;
  for (const auto& s : tracer.spans()) modeled += s.modeled_s;
  EXPECT_DOUBLE_EQ(tracer.total_modeled_s(), modeled);

  // Real kernels through simgpu::launch carry wall time into spans.
  tracer.clear();
  dev.reset();
  simgpu::launch(dev, "busy", simgpu::LaunchConfig{1, 32, 0},
                 make_stats(32, 256), [&](const simgpu::KernelCtx&) {});
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].wall_s, 0.0);
}

TEST(Tracer, AggregationSurvivesDeviceReset) {
  // bench_util resets the device per phase; the tracer must keep the whole
  // history so bench JSON kernel rows cover the full iteration.
  simgpu::Device dev(simgpu::a100());
  Tracer tracer;
  dev.set_tracer(&tracer);
  dev.record("k", make_stats(1, 8));
  dev.reset();
  dev.record("k", make_stats(2, 16));
  EXPECT_EQ(tracer.per_kernel().at("k").stats.flops, 3.0);
  EXPECT_EQ(dev.per_kernel().at("k").flops, 2.0);  // device forgot, by design
}

TEST(Tracer, PerPhaseAggregation) {
  Tracer tracer;
  {
    simgpu::ScopedPhase p(&tracer, "GRAM");
    tracer.add_span("k", make_stats(10, 80), 0.0, 1.0);
  }
  {
    simgpu::ScopedPhase p(&tracer, "MTTKRP");
    tracer.add_span("k", make_stats(30, 240), 0.0, 3.0);
  }
  const auto by_phase = tracer.per_phase();
  ASSERT_EQ(by_phase.size(), 2u);
  EXPECT_DOUBLE_EQ(by_phase.at("GRAM").modeled_s, 1.0);
  EXPECT_DOUBLE_EQ(by_phase.at("MTTKRP").modeled_s, 3.0);
  EXPECT_DOUBLE_EQ(by_phase.at("MTTKRP").stats.flops, 30.0);
}

TEST(Tracer, SummaryTableListsKernels) {
  Tracer tracer;
  tracer.add_span("dominant", make_stats(1e9, 1e8), 0.0, 2.0);
  tracer.add_span("minor", make_stats(1e3, 1e2), 0.0, 0.5);
  const std::string table = tracer.summary_table();
  EXPECT_NE(table.find("dominant"), std::string::npos);
  EXPECT_NE(table.find("minor"), std::string::npos);
  // Sorted by modeled time descending: dominant first.
  EXPECT_LT(table.find("dominant"), table.find("minor"));
}

TEST(Json, ParserRoundTrip) {
  const std::string doc =
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": true, "e": null})";
  const json::Value v = json::parse(doc);
  ASSERT_EQ(v.type, json::Value::Type::kObject);
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].num, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].num, -300.0);
  EXPECT_EQ(v.find("b")->find("c")->str, "x\"y");
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_EQ(v.find("e")->type, json::Value::Type::kNull);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "nul",
                          "\"unterminated", "1 2", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_THROW(json::parse(bad), Error) << bad;
    EXPECT_FALSE(json::valid(bad)) << bad;
  }
  EXPECT_TRUE(json::valid("{\"a\": [1, 2]}"));
}

TEST(Json, NumberFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 1e-300, 3.141592653589793, 1e17}) {
    const json::Value parsed = json::parse(json::number(v));
    EXPECT_DOUBLE_EQ(parsed.num, v);
  }
  // Non-finite values are not representable; they serialize as 0.
  EXPECT_TRUE(json::valid(json::number(1.0 / 0.0)));
}

TEST(Tracer, ChromeTraceJsonIsValidAndComplete) {
  Tracer tracer;
  {
    simgpu::ScopedPhase p(&tracer, "UPDATE");
    tracer.add_span("k1", make_stats(10, 80), 1e-5, 1e-6);
  }
  tracer.add_span("k2", make_stats(20, 160), 0.0, 2e-6);
  const std::string doc = tracer.chrome_trace_json();
  const json::Value v = json::parse(doc);
  const json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int phases = 0, kernels = 0, lane_names = 0, complete = 0;
  for (const json::Value& e : events->array) {
    if (e.find("ph")->str == "M") {  // lane-name metadata (thread_name)
      EXPECT_EQ(e.find("name")->str, "thread_name");
      ++lane_names;
      continue;
    }
    ASSERT_EQ(e.find("ph")->str, "X");
    ++complete;
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    if (e.find("cat")->str == "phase") ++phases;
    if (e.find("cat")->str == "kernel") ++kernels;
  }
  EXPECT_EQ(complete, 3);  // 2 kernel spans + 1 phase
  EXPECT_EQ(phases, 1);
  EXPECT_EQ(kernels, 2);
  EXPECT_GE(lane_names, 2);  // at least the phase lane + default stream
}

TEST(Tracer, ChromeTraceHasStreamLanesAndFlowArrows) {
  // Kernel spans are laid out one lane per stream (tid = 1 + stream id, so
  // the default stream keeps its pre-stream lane) and every event edge
  // becomes an "s"/"f" flow-arrow pair.
  simgpu::Device dev(simgpu::a100());
  Tracer tracer;
  dev.set_tracer(&tracer);
  const simgpu::Stream copy = dev.create_stream("copy");
  dev.record("h2d", make_stats(0, 64), 0.0, copy);
  dev.wait_event(simgpu::Stream{}, dev.record_event(copy));
  dev.record("kernel", make_stats(10, 80));

  const json::Value v = json::parse(tracer.chrome_trace_json());
  const json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int on_default_lane = 0, on_copy_lane = 0, flow_starts = 0, flow_ends = 0;
  for (const json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->str;
    if (ph == "X" && e.find("cat")->str == "kernel") {
      const double tid = e.find("tid")->num;
      const double stream = e.find("args")->find("stream")->num;
      EXPECT_DOUBLE_EQ(tid, 1.0 + stream);
      if (tid == 1.0) ++on_default_lane;
      if (tid == 2.0) ++on_copy_lane;
    }
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_ends;
  }
  EXPECT_EQ(on_default_lane, 1);
  EXPECT_EQ(on_copy_lane, 1);
  EXPECT_EQ(flow_starts, 1);  // one dependency edge -> one arrow pair
  EXPECT_EQ(flow_ends, 1);
}

TEST(Tracer, ChromeKernelSpanCountMatchesDeviceLaunchTotals) {
  simgpu::Device dev(simgpu::a100());
  Tracer tracer;
  dev.set_tracer(&tracer);
  for (int i = 0; i < 3; ++i) {
    simgpu::launch(dev, "k", simgpu::LaunchConfig{1, 8, 0}, make_stats(1, 8),
                   [](const simgpu::KernelCtx&) {});
  }
  simgpu::launch(dev, "j", simgpu::LaunchConfig{2, 4, 0}, make_stats(2, 16),
                 [](const simgpu::KernelCtx&) {});

  std::int64_t launches = 0;
  for (const auto& [name, stats] : dev.per_kernel()) launches += stats.launches;
  ASSERT_EQ(launches, 4);

  const json::Value v = json::parse(tracer.chrome_trace_json());
  int kernel_events = 0;
  for (const json::Value& e : v.find("traceEvents")->array) {
    if (e.find("ph")->str == "X" && e.find("cat")->str == "kernel") {
      ++kernel_events;
    }
  }
  EXPECT_EQ(kernel_events, launches);  // one slice per recorded launch
}

// --- bench JSON session -----------------------------------------------------

struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvGuard() { unsetenv(name_); }
  const char* name_;
};

bench::ModeledIteration tiny_modeled_iteration(bench::ModeledIteration* wall) {
  const DatasetSpec& spec = dataset_by_name("Uber");
  DatasetAnalog data = make_analog(spec, /*target_nnz=*/2000);
  BlcoBackend backend(data.tensor);
  AdmmOptions opt;
  opt.prox = Proximity::non_negative();
  opt.inner_iterations = 3;
  AdmmUpdate update(opt);
  return bench::modeled_iteration(data, backend, update, simgpu::a100(),
                                  /*rank=*/6, wall);
}

TEST(BenchJson, SessionWritesSchemaValidFileWhenEnabled) {
  EnvGuard enable("CSTF_BENCH_JSON", "1");
  EnvGuard dir("CSTF_BENCH_JSON_DIR", ::testing::TempDir().c_str());
  std::string path;
  bench::ModeledIteration wall;
  bench::ModeledIteration modeled;
  {
    bench::JsonSession session("trace_test");
    EXPECT_TRUE(session.enabled());
    EXPECT_EQ(bench::JsonSession::current(), &session);
    modeled = tiny_modeled_iteration(&wall);
    ASSERT_EQ(session.record_count(), 1u);
    path = session.write();
    ASSERT_FALSE(path.empty());
  }
  EXPECT_EQ(bench::JsonSession::current(), nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());
  EXPECT_EQ(doc.find("bench")->str, "trace_test");
  const json::Value* records = doc.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array.size(), 1u);
  const json::Value& rec = records->array[0];
  EXPECT_EQ(rec.find("dataset")->str, "Uber");
  EXPECT_EQ(rec.find("machine")->str, "A100");
  EXPECT_DOUBLE_EQ(rec.find("rank")->num, 6.0);

  // Per-phase modeled seconds must sum to the reported iteration total, and
  // match what modeled_iteration returned to the caller.
  const json::Value* phases = rec.find("phases");
  ASSERT_NE(phases, nullptr);
  double sum = 0.0;
  for (const char* name : {"GRAM", "MTTKRP", "UPDATE", "NORMALIZE"}) {
    const json::Value* p = phases->find(name);
    ASSERT_NE(p, nullptr) << name;
    sum += p->find("modeled_s")->num;
    EXPECT_GE(p->find("wall_s")->num, 0.0);
  }
  EXPECT_NEAR(rec.find("total_modeled_s")->num, sum, 1e-12 + 1e-9 * sum);
  EXPECT_NEAR(rec.find("total_modeled_s")->num, modeled.total(),
              1e-9 * modeled.total());

  // Kernel rows exist and carry positive work.
  const json::Value* kernels = rec.find("kernels");
  ASSERT_NE(kernels, nullptr);
  EXPECT_GT(kernels->array.size(), 0u);
  bool saw_mttkrp_work = false;
  for (const json::Value& row : kernels->array) {
    ASSERT_NE(row.find("name"), nullptr);
    if (row.find("flops")->num > 0) saw_mttkrp_work = true;
  }
  EXPECT_TRUE(saw_mttkrp_work);
  std::remove(path.c_str());
}

TEST(BenchJson, DisabledSessionWritesNothing) {
  // Neither env var set: write() is a no-op returning "".
  unsetenv("CSTF_BENCH_JSON");
  unsetenv("CSTF_BENCH_JSON_DIR");
  bench::JsonSession session("trace_test_disabled");
  EXPECT_FALSE(session.enabled());
  tiny_modeled_iteration(nullptr);
  EXPECT_EQ(session.record_count(), 1u);  // records accumulate regardless
  EXPECT_EQ(session.write(), "");
  std::ifstream probe(session.output_path());
  EXPECT_FALSE(probe.good());
}

TEST(BenchJson, ToJsonAlwaysParses) {
  bench::JsonSession session("empty");
  const json::Value doc = json::parse(session.to_json());
  EXPECT_EQ(doc.find("bench")->str, "empty");
  EXPECT_EQ(doc.find("records")->array.size(), 0u);
}

}  // namespace
}  // namespace cstf
