// Differential tests: every MTTKRP kernel must agree with the sequential
// reference on every mode, across shapes, ranks, and formats.
#include <gtest/gtest.h>

#include <tuple>

#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "la/matrix.hpp"
#include "mttkrp/alto_mttkrp.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "simgpu/cost_model.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/csf_mttkrp.hpp"
#include "tensor/datasets.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor random_tensor(std::vector<index_t> dims, index_t nnz,
                           std::uint64_t seed) {
  RandomTensorParams params;
  params.dims = std::move(dims);
  params.target_nnz = nnz;
  params.seed = seed;
  return generate_random(params);
}

std::vector<Matrix> random_factors(const SparseTensor& t, index_t rank,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    Matrix f(t.dim(m), rank);
    f.fill_uniform(rng, 0.1, 1.0);
    factors.push_back(std::move(f));
  }
  return factors;
}

// (num_modes, rank) sweep.
class MttkrpSweep
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {
 protected:
  SparseTensor make_tensor() const {
    const int modes = std::get<0>(GetParam());
    std::vector<index_t> dims;
    const index_t base[5] = {37, 23, 41, 11, 7};
    for (int m = 0; m < modes; ++m) dims.push_back(base[m]);
    return random_tensor(dims, 1500, 21);
  }
};

TEST_P(MttkrpSweep, CooParallelMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 31);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_coo(t, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, CsfMatchesReferenceOnEveryRootMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 32);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    CsfTensor csf(t, mode);
    mttkrp_csf(csf, factors, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, AltoMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 33);
  const AltoTensor alto(t);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_alto(alto, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, BlcoMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 34);
  const BlcoTensor blco(t, 256);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_blco(dev, blco, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesByRank, MttkrpSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values<index_t>(1, 8, 16, 32)),
    [](const auto& name_info) {
      return "modes" + std::to_string(std::get<0>(name_info.param)) + "_rank" +
             std::to_string(std::get<1>(name_info.param));
    });

TEST(Mttkrp, KnownValueByHand) {
  // 2x2 matrix (2-mode tensor) X = [[1,2],[0,3]]; factor B = [[1],[2]].
  // Mode-0 MTTKRP = X * B = [5, 6]^T.
  SparseTensor t({2, 2});
  t.append({0, 0}, 1.0);
  t.append({0, 1}, 2.0);
  t.append({1, 1}, 3.0);
  Matrix a(2, 1), b(2, 1);
  b(0, 0) = 1.0;
  b(1, 0) = 2.0;
  Matrix out(2, 1);
  mttkrp_ref(t, {a, b}, 0, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 6.0);
}

TEST(Mttkrp, ThreeModeHandComputed) {
  // Single nonzero x_{1,2,0} = 2 with known factor rows: out row 1 must be
  // 2 * (B(2,:) .* C(0,:)).
  SparseTensor t({3, 3, 2});
  t.append({1, 2, 0}, 2.0);
  Rng rng(1);
  Matrix a(3, 4), b(3, 4), c(2, 4);
  b.fill_uniform(rng);
  c.fill_uniform(rng);
  Matrix out(3, 4);
  mttkrp_ref(t, {a, b, c}, 0, out);
  for (index_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(out(1, r), 2.0 * b(2, r) * c(0, r), 1e-14);
    EXPECT_DOUBLE_EQ(out(0, r), 0.0);
    EXPECT_DOUBLE_EQ(out(2, r), 0.0);
  }
}

TEST(Mttkrp, SharedOutputRowAccumulation) {
  SparseTensor t({1, 4});
  t.append({0, 0}, 1.0);
  t.append({0, 1}, 2.0);
  t.append({0, 2}, 3.0);
  Matrix a(1, 2), b(4, 2);
  for (index_t i = 0; i < 4; ++i) {
    b(i, 0) = 1.0;
    b(i, 1) = static_cast<real_t>(i);
  }
  Matrix out(1, 2);
  mttkrp_coo(t, {a, b}, 0, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(out(0, 1), 8.0);   // 1*0+2*1+3*2
}

TEST(Mttkrp, BlcoMetersTrafficAndLaunches) {
  SparseTensor t = random_tensor({64, 64, 64}, 4000, 41);
  const auto factors = random_factors(t, 16, 42);
  const BlcoTensor blco(t, 512);
  simgpu::Device dev(simgpu::h100());
  Matrix out(t.dim(0), 16);
  mttkrp_blco(dev, blco, factors, 0, out);
  const auto& stats = dev.per_kernel().at("mttkrp_blco");
  EXPECT_GT(stats.flops, 0.0);
  EXPECT_GT(stats.bytes_random, 0.0);
  EXPECT_NEAR(stats.bytes_streamed, blco.storage_bytes(), 1.0);
  EXPECT_EQ(stats.launches, 1);
  EXPECT_GT(dev.modeled_time_s(), 0.0);
}

TEST(Mttkrp, StreamedMatchesResidentExactly) {
  SparseTensor t = random_tensor({80, 70, 60}, 6000, 51);
  const auto factors = random_factors(t, 16, 52);
  const BlcoTensor blco(t, 256);
  simgpu::Device dev_resident(simgpu::a100());
  simgpu::Device dev_streamed(simgpu::a100());
  for (int mode = 0; mode < 3; ++mode) {
    Matrix want(t.dim(mode), 16), got(t.dim(mode), 16);
    mttkrp_blco(dev_resident, blco, factors, mode, want);
    // Budget forcing ~4 batches.
    const index_t batches = mttkrp_blco_streamed(
        dev_streamed, blco, factors, mode, got, blco.storage_bytes() / 4.0);
    EXPECT_GE(batches, 4);
    EXPECT_LT(max_abs_diff(got, want), 1e-12) << "mode " << mode;
  }
}

TEST(Mttkrp, StreamedDegeneratesToResidentWhenItFits) {
  SparseTensor t = random_tensor({40, 40, 40}, 2000, 53);
  const auto factors = random_factors(t, 8, 54);
  const BlcoTensor blco(t, 512);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(0), 8);
  const index_t batches = mttkrp_blco_streamed(dev, blco, factors, 0, out,
                                               2.0 * blco.storage_bytes());
  EXPECT_EQ(batches, 1);
  EXPECT_EQ(dev.per_kernel().count("mttkrp_blco"), 1u);
  EXPECT_EQ(dev.per_kernel().count("mttkrp_blco_streamed"), 0u);
}

TEST(Mttkrp, StreamedCopyStreamPipelineMatchesAndOverlaps) {
  // Passing an explicit copy stream changes only the time model: results are
  // bit-identical, staging traffic moves onto dedicated stage spans, and the
  // double-buffered makespan lands in [compute-only, copy-then-compute sum].
  SparseTensor t = random_tensor({80, 70, 60}, 6000, 61);
  const auto factors = random_factors(t, 16, 62);
  const BlcoTensor blco(t, 256);

  simgpu::Device legacy(simgpu::a100());
  Matrix want(t.dim(0), 16);
  const index_t batches = mttkrp_blco_streamed(legacy, blco, factors, 0, want,
                                               blco.storage_bytes() / 4.0);
  ASSERT_GE(batches, 4);

  simgpu::Device piped(simgpu::a100());
  const simgpu::Stream copy = piped.create_stream("h2d_copy");
  Matrix got(t.dim(0), 16);
  const index_t batches2 = mttkrp_blco_streamed(
      piped, blco, factors, 0, got, blco.storage_bytes() / 4.0, copy);
  EXPECT_EQ(batches2, batches);
  EXPECT_LT(max_abs_diff(got, want), 1e-15);

  // All staged bytes land on the stage spans, none on the compute kernel.
  const auto& stage = piped.per_kernel().at("mttkrp_stage_batch");
  const auto& legacy_stats = legacy.per_kernel().at("mttkrp_blco_streamed");
  EXPECT_NEAR(stage.host_link_bytes, legacy_stats.host_link_bytes, 1.0);
  EXPECT_DOUBLE_EQ(
      piped.per_kernel().at("mttkrp_blco_streamed").host_link_bytes, 0.0);

  const double serial = piped.serial_modeled_time_s();
  const double overlap = piped.modeled_makespan_s();
  const double compute_only =
      piped.modeled_kernel_time_s("mttkrp_blco_streamed");
  EXPECT_LE(overlap, serial * (1.0 + 1e-12));
  EXPECT_GE(overlap, compute_only * (1.0 - 1e-12));
}

TEST(Mttkrp, StreamedChargesHostLinkTraffic) {
  SparseTensor t = random_tensor({60, 60, 60}, 5000, 55);
  const auto factors = random_factors(t, 16, 56);
  const BlcoTensor blco(t, 128);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(0), 16);
  mttkrp_blco_streamed(dev, blco, factors, 0, out, blco.storage_bytes() / 8.0);
  const auto& stats = dev.per_kernel().at("mttkrp_blco_streamed");
  // Every compressed byte must have been staged exactly once.
  double expected = 0.0;
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    expected += static_cast<double>(blco.block(b).packed_deltas.size()) *
                    sizeof(std::uint64_t) +
                static_cast<double>(blco.block(b).count) * sizeof(real_t);
  }
  EXPECT_NEAR(stats.host_link_bytes, expected, 1.0);
  const auto t_model = simgpu::model_time(stats, dev.spec());
  EXPECT_GT(t_model.link_s, 0.0);
}

TEST(Mttkrp, DatasetAnalogAllFormatsAgree) {
  // End-to-end cross-format agreement on a realistic skewed analog.
  DatasetAnalog analog = make_analog(dataset_by_name("Uber"), 5000);
  const SparseTensor& t = analog.tensor;
  const auto factors = random_factors(t, 8, 77);
  const AltoTensor alto(t);
  const BlcoTensor blco(t, 1024);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), 8);
    mttkrp_ref(t, factors, mode, want);
    Matrix got_csf(t.dim(mode), 8), got_alto(t.dim(mode), 8),
        got_blco(t.dim(mode), 8);
    CsfTensor csf(t, mode);
    mttkrp_csf(csf, factors, got_csf);
    mttkrp_alto(alto, factors, mode, got_alto);
    mttkrp_blco(dev, blco, factors, mode, got_blco);
    EXPECT_LT(max_abs_diff(got_csf, want), 1e-9) << "csf mode " << mode;
    EXPECT_LT(max_abs_diff(got_alto, want), 1e-9) << "alto mode " << mode;
    EXPECT_LT(max_abs_diff(got_blco, want), 1e-9) << "blco mode " << mode;
  }
}

}  // namespace
}  // namespace cstf
