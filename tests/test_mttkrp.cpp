// Differential tests: every MTTKRP kernel must agree with the sequential
// reference on every mode, across shapes, ranks, and formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "la/matrix.hpp"
#include "mttkrp/alto_mttkrp.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "simgpu/cost_model.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/csf_mttkrp.hpp"
#include "tensor/datasets.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

SparseTensor random_tensor(std::vector<index_t> dims, index_t nnz,
                           std::uint64_t seed) {
  RandomTensorParams params;
  params.dims = std::move(dims);
  params.target_nnz = nnz;
  params.seed = seed;
  return generate_random(params);
}

std::vector<Matrix> random_factors(const SparseTensor& t, index_t rank,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    Matrix f(t.dim(m), rank);
    f.fill_uniform(rng, 0.1, 1.0);
    factors.push_back(std::move(f));
  }
  return factors;
}

// (num_modes, rank) sweep.
class MttkrpSweep
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {
 protected:
  SparseTensor make_tensor() const {
    const int modes = std::get<0>(GetParam());
    std::vector<index_t> dims;
    const index_t base[5] = {37, 23, 41, 11, 7};
    for (int m = 0; m < modes; ++m) dims.push_back(base[m]);
    return random_tensor(dims, 1500, 21);
  }
};

TEST_P(MttkrpSweep, CooParallelMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 31);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_coo(t, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, CsfMatchesReferenceOnEveryRootMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 32);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    CsfTensor csf(t, mode);
    mttkrp_csf(csf, factors, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, AltoMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 33);
  const AltoTensor alto(t);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_alto(alto, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

TEST_P(MttkrpSweep, BlcoMatchesReferenceOnEveryMode) {
  const SparseTensor t = make_tensor();
  const index_t rank = std::get<1>(GetParam());
  const auto factors = random_factors(t, rank, 34);
  const BlcoTensor blco(t, 256);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), rank), got(t.dim(mode), rank);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_blco(dev, blco, factors, mode, got);
    EXPECT_LT(max_abs_diff(got, want), 1e-10) << "mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesByRank, MttkrpSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values<index_t>(1, 8, 16, 32)),
    [](const auto& name_info) {
      return "modes" + std::to_string(std::get<0>(name_info.param)) + "_rank" +
             std::to_string(std::get<1>(name_info.param));
    });

TEST(Mttkrp, KnownValueByHand) {
  // 2x2 matrix (2-mode tensor) X = [[1,2],[0,3]]; factor B = [[1],[2]].
  // Mode-0 MTTKRP = X * B = [5, 6]^T.
  SparseTensor t({2, 2});
  t.append({0, 0}, 1.0);
  t.append({0, 1}, 2.0);
  t.append({1, 1}, 3.0);
  Matrix a(2, 1), b(2, 1);
  b(0, 0) = 1.0;
  b(1, 0) = 2.0;
  Matrix out(2, 1);
  mttkrp_ref(t, {a, b}, 0, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 6.0);
}

TEST(Mttkrp, ThreeModeHandComputed) {
  // Single nonzero x_{1,2,0} = 2 with known factor rows: out row 1 must be
  // 2 * (B(2,:) .* C(0,:)).
  SparseTensor t({3, 3, 2});
  t.append({1, 2, 0}, 2.0);
  Rng rng(1);
  Matrix a(3, 4), b(3, 4), c(2, 4);
  b.fill_uniform(rng);
  c.fill_uniform(rng);
  Matrix out(3, 4);
  mttkrp_ref(t, {a, b, c}, 0, out);
  for (index_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(out(1, r), 2.0 * b(2, r) * c(0, r), 1e-14);
    EXPECT_DOUBLE_EQ(out(0, r), 0.0);
    EXPECT_DOUBLE_EQ(out(2, r), 0.0);
  }
}

TEST(Mttkrp, SharedOutputRowAccumulation) {
  SparseTensor t({1, 4});
  t.append({0, 0}, 1.0);
  t.append({0, 1}, 2.0);
  t.append({0, 2}, 3.0);
  Matrix a(1, 2), b(4, 2);
  for (index_t i = 0; i < 4; ++i) {
    b(i, 0) = 1.0;
    b(i, 1) = static_cast<real_t>(i);
  }
  Matrix out(1, 2);
  mttkrp_coo(t, {a, b}, 0, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 6.0);   // 1+2+3
  EXPECT_DOUBLE_EQ(out(0, 1), 8.0);   // 1*0+2*1+3*2
}

TEST(Mttkrp, BlcoMetersTrafficAndLaunches) {
  SparseTensor t = random_tensor({64, 64, 64}, 4000, 41);
  const auto factors = random_factors(t, 16, 42);
  const BlcoTensor blco(t, 512);
  simgpu::Device dev(simgpu::h100());
  Matrix out(t.dim(0), 16);
  mttkrp_blco(dev, blco, factors, 0, out);
  const auto& stats = dev.per_kernel().at("mttkrp_blco");
  EXPECT_GT(stats.flops, 0.0);
  EXPECT_GT(stats.bytes_random, 0.0);
  EXPECT_NEAR(stats.bytes_streamed, blco.storage_bytes(), 1.0);
  EXPECT_EQ(stats.launches, 1);
  EXPECT_GT(dev.modeled_time_s(), 0.0);
}

TEST(Mttkrp, StreamedMatchesResidentExactly) {
  SparseTensor t = random_tensor({80, 70, 60}, 6000, 51);
  const auto factors = random_factors(t, 16, 52);
  const BlcoTensor blco(t, 256);
  simgpu::Device dev_resident(simgpu::a100());
  simgpu::Device dev_streamed(simgpu::a100());
  for (int mode = 0; mode < 3; ++mode) {
    Matrix want(t.dim(mode), 16), got(t.dim(mode), 16);
    mttkrp_blco(dev_resident, blco, factors, mode, want);
    // Budget forcing ~4 batches.
    const index_t batches = mttkrp_blco_streamed(
        dev_streamed, blco, factors, mode, got, blco.storage_bytes() / 4.0);
    EXPECT_GE(batches, 4);
    EXPECT_LT(max_abs_diff(got, want), 1e-12) << "mode " << mode;
  }
}

TEST(Mttkrp, StreamedDegeneratesToResidentWhenItFits) {
  SparseTensor t = random_tensor({40, 40, 40}, 2000, 53);
  const auto factors = random_factors(t, 8, 54);
  const BlcoTensor blco(t, 512);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(0), 8);
  const index_t batches = mttkrp_blco_streamed(dev, blco, factors, 0, out,
                                               2.0 * blco.storage_bytes());
  EXPECT_EQ(batches, 1);
  EXPECT_EQ(dev.per_kernel().count("mttkrp_blco"), 1u);
  EXPECT_EQ(dev.per_kernel().count("mttkrp_blco_streamed"), 0u);
}

TEST(Mttkrp, StreamedCopyStreamPipelineMatchesAndOverlaps) {
  // Passing an explicit copy stream changes only the time model: results are
  // bit-identical, staging traffic moves onto dedicated stage spans, and the
  // double-buffered makespan lands in [compute-only, copy-then-compute sum].
  SparseTensor t = random_tensor({80, 70, 60}, 6000, 61);
  const auto factors = random_factors(t, 16, 62);
  const BlcoTensor blco(t, 256);

  simgpu::Device legacy(simgpu::a100());
  Matrix want(t.dim(0), 16);
  const index_t batches = mttkrp_blco_streamed(legacy, blco, factors, 0, want,
                                               blco.storage_bytes() / 4.0);
  ASSERT_GE(batches, 4);

  simgpu::Device piped(simgpu::a100());
  const simgpu::Stream copy = piped.create_stream("h2d_copy");
  Matrix got(t.dim(0), 16);
  const index_t batches2 = mttkrp_blco_streamed(
      piped, blco, factors, 0, got, blco.storage_bytes() / 4.0, copy);
  EXPECT_EQ(batches2, batches);
  EXPECT_LT(max_abs_diff(got, want), 1e-15);

  // All staged bytes land on the stage spans, none on the compute kernel.
  const auto& stage = piped.per_kernel().at("mttkrp_stage_batch");
  const auto& legacy_stats = legacy.per_kernel().at("mttkrp_blco_streamed");
  EXPECT_NEAR(stage.host_link_bytes, legacy_stats.host_link_bytes, 1.0);
  EXPECT_DOUBLE_EQ(
      piped.per_kernel().at("mttkrp_blco_streamed").host_link_bytes, 0.0);

  const double serial = piped.serial_modeled_time_s();
  const double overlap = piped.modeled_makespan_s();
  const double compute_only =
      piped.modeled_kernel_time_s("mttkrp_blco_streamed");
  EXPECT_LE(overlap, serial * (1.0 + 1e-12));
  EXPECT_GE(overlap, compute_only * (1.0 - 1e-12));
}

TEST(Mttkrp, StreamedChargesHostLinkTraffic) {
  SparseTensor t = random_tensor({60, 60, 60}, 5000, 55);
  const auto factors = random_factors(t, 16, 56);
  const BlcoTensor blco(t, 128);
  simgpu::Device dev(simgpu::a100());
  Matrix out(t.dim(0), 16);
  mttkrp_blco_streamed(dev, blco, factors, 0, out, blco.storage_bytes() / 8.0);
  const auto& stats = dev.per_kernel().at("mttkrp_blco_streamed");
  // Every compressed byte must have been staged exactly once.
  double expected = 0.0;
  for (index_t b = 0; b < blco.num_blocks(); ++b) {
    expected += static_cast<double>(blco.block(b).packed_deltas.size()) *
                    sizeof(std::uint64_t) +
                static_cast<double>(blco.block(b).count) * sizeof(real_t);
  }
  EXPECT_NEAR(stats.host_link_bytes, expected, 1.0);
  const auto t_model = simgpu::model_time(stats, dev.spec());
  EXPECT_GT(t_model.link_s, 0.0);
}

// ---------------------------------------------------------------------------
// Adaptive scatter engine (mttkrp/scatter.hpp)
// ---------------------------------------------------------------------------

ScatterOptions explicit_strategy(ScatterStrategy s) {
  ScatterOptions opts;
  opts.strategy = s;
  return opts;
}

class ScatterStrategySweep
    : public ::testing::TestWithParam<ScatterStrategy> {};

TEST_P(ScatterStrategySweep, AllEnginesMatchReferenceOnEveryMode) {
  // Mixed mode lengths: 19 is the privatized sweet spot, 401 exercises the
  // segment sweep over many rows.
  const SparseTensor t = random_tensor({19, 57, 401}, 4000, 91);
  const auto factors = random_factors(t, 16, 92);
  const AltoTensor alto(t);
  const BlcoTensor blco(t, 256);
  simgpu::Device dev(simgpu::a100());
  const ScatterOptions opts = explicit_strategy(GetParam());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), 16);
    mttkrp_ref(t, factors, mode, want);
    Matrix got_coo(t.dim(mode), 16), got_alto(t.dim(mode), 16),
        got_blco(t.dim(mode), 16);
    EXPECT_EQ(mttkrp_coo(t, factors, mode, got_coo, opts), GetParam());
    EXPECT_EQ(mttkrp_alto(alto, factors, mode, got_alto, opts), GetParam());
    EXPECT_EQ(mttkrp_blco(dev, blco, factors, mode, got_blco, opts),
              GetParam());
    EXPECT_LT(max_abs_diff(got_coo, want), 1e-10) << "coo mode " << mode;
    EXPECT_LT(max_abs_diff(got_alto, want), 1e-10) << "alto mode " << mode;
    EXPECT_LT(max_abs_diff(got_blco, want), 1e-10) << "blco mode " << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ScatterStrategySweep,
                         ::testing::Values(ScatterStrategy::kAtomic,
                                           ScatterStrategy::kPrivatized,
                                           ScatterStrategy::kSorted),
                         [](const auto& info) {
                           return scatter_strategy_name(info.param);
                         });

TEST(Scatter, CachedPlanMatchesOneShotBuild) {
  const SparseTensor t = random_tensor({23, 31, 17}, 2000, 95);
  const auto factors = random_factors(t, 8, 96);
  const ScatterOptions opts = explicit_strategy(ScatterStrategy::kSorted);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    const ScatterPlan plan = coo_scatter_plan(t, mode);
    Matrix one_shot(t.dim(mode), 8), cached(t.dim(mode), 8);
    mttkrp_coo(t, factors, mode, one_shot, opts);  // builds its own plan
    mttkrp_coo(t, factors, mode, cached, opts, &plan);
    EXPECT_DOUBLE_EQ(max_abs_diff(one_shot, cached), 0.0) << "mode " << mode;
  }
}

TEST(Scatter, PlanSegmentsPartitionNonzerosByRow) {
  const SparseTensor t = random_tensor({13, 40, 40}, 1500, 97);
  const ScatterPlan plan = coo_scatter_plan(t, 0);
  const auto& rows = t.indices(0);
  ASSERT_EQ(static_cast<index_t>(plan.order.size()), t.nnz());
  ASSERT_EQ(plan.seg_ptr.size(), plan.seg_row.size() + 1);
  EXPECT_EQ(plan.seg_ptr.front(), 0);
  EXPECT_EQ(plan.seg_ptr.back(), t.nnz());
  for (index_t s = 0; s < plan.num_segments(); ++s) {
    const auto su = static_cast<std::size_t>(s);
    ASSERT_LT(plan.seg_ptr[su], plan.seg_ptr[su + 1]);  // no empty segments
    if (s > 0) ASSERT_LT(plan.seg_row[su - 1], plan.seg_row[su]);
    for (index_t k = plan.seg_ptr[su]; k < plan.seg_ptr[su + 1]; ++k) {
      const index_t i = plan.order[static_cast<std::size_t>(k)];
      ASSERT_EQ(rows[static_cast<std::size_t>(i)], plan.seg_row[su]);
      // Stability: ids ascend within a segment.
      if (k > plan.seg_ptr[su]) {
        ASSERT_LT(plan.order[static_cast<std::size_t>(k - 1)], i);
      }
    }
  }
}

TEST(Scatter, PlanHandlesAllNonzerosInOneRow) {
  SparseTensor t({3, 64});
  for (index_t j = 0; j < 64; ++j) t.append({1, j}, 1.0);
  const ScatterPlan plan = coo_scatter_plan(t, 0);
  ASSERT_EQ(plan.num_segments(), 1);
  EXPECT_EQ(plan.seg_row[0], 1);
  EXPECT_EQ(plan.seg_ptr[0], 0);
  EXPECT_EQ(plan.seg_ptr[1], 64);
}

TEST(Scatter, SortedPathIsBitIdenticalToReference) {
  // The plan's per-row order is ascending nonzero id — the same accumulation
  // order the sequential reference uses — so the sorted path is not just
  // close to the reference, it is the reference, bit for bit.
  const SparseTensor t = random_tensor({29, 37, 21}, 3000, 99);
  const auto factors = random_factors(t, 16, 100);
  const ScatterOptions opts = explicit_strategy(ScatterStrategy::kSorted);
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), 16), got(t.dim(mode), 16);
    mttkrp_ref(t, factors, mode, want);
    mttkrp_coo(t, factors, mode, got, opts);
    EXPECT_DOUBLE_EQ(max_abs_diff(got, want), 0.0) << "mode " << mode;
  }
}

TEST(Scatter, DeterministicRunsAreBitIdentical) {
  const SparseTensor t = random_tensor({31, 47, 300}, 5000, 101);
  const auto factors = random_factors(t, 16, 102);
  for (ScatterStrategy strategy :
       {ScatterStrategy::kPrivatized, ScatterStrategy::kSorted}) {
    ScatterOptions opts = explicit_strategy(strategy);
    opts.deterministic = true;
    for (int mode = 0; mode < t.num_modes(); ++mode) {
      Matrix a(t.dim(mode), 16), b(t.dim(mode), 16);
      mttkrp_coo(t, factors, mode, a, opts);
      mttkrp_coo(t, factors, mode, b, opts);
      EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0)
          << scatter_strategy_name(strategy) << " mode " << mode;
    }
  }
}

TEST(Scatter, ResolutionRespectsBudgetDeterminismAndContention) {
  ScatterOptions opts;  // kAuto
  // Short mode, tiles fit the default 64 MB budget -> privatized.
  EXPECT_EQ(resolve_scatter_strategy(opts, 512, 32, 100000),
            ScatterStrategy::kPrivatized);
  // Shrink the budget below one tile -> falls through; with ~195 updates
  // per row the contention proxy picks sorted.
  opts.privatization_budget_bytes = 1024.0;
  EXPECT_EQ(resolve_scatter_strategy(opts, 512, 32, 100000),
            ScatterStrategy::kSorted);
  // Long sparse mode over budget, low updates-per-row -> atomic...
  EXPECT_EQ(resolve_scatter_strategy(opts, 1 << 20, 32, 100000),
            ScatterStrategy::kAtomic);
  // ...unless determinism forbids atomics.
  opts.deterministic = true;
  EXPECT_EQ(resolve_scatter_strategy(opts, 1 << 20, 32, 100000),
            ScatterStrategy::kSorted);
  // An explicit atomic request under determinism is re-resolved...
  opts.strategy = ScatterStrategy::kAtomic;
  EXPECT_NE(resolve_scatter_strategy(opts, 1 << 20, 32, 100000),
            ScatterStrategy::kAtomic);
  // ...but other explicit requests pass through.
  opts.strategy = ScatterStrategy::kPrivatized;
  EXPECT_EQ(resolve_scatter_strategy(opts, 1 << 20, 32, 100000),
            ScatterStrategy::kPrivatized);
}

TEST(Scatter, StrategyNamesRoundTrip) {
  for (ScatterStrategy s :
       {ScatterStrategy::kAuto, ScatterStrategy::kAtomic,
        ScatterStrategy::kPrivatized, ScatterStrategy::kSorted}) {
    ScatterStrategy parsed;
    ASSERT_TRUE(parse_scatter_strategy(scatter_strategy_name(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  ScatterStrategy untouched = ScatterStrategy::kSorted;
  EXPECT_FALSE(parse_scatter_strategy("bogus", &untouched));
  EXPECT_EQ(untouched, ScatterStrategy::kSorted);
}

TEST(Scatter, ApplyStatsMetersAtomicOpsAgainstOutputSlots) {
  simgpu::KernelStats stats;
  apply_scatter_stats(stats, ScatterStrategy::kAtomic, /*mode_len=*/100,
                      /*rank=*/8, /*nnz=*/5000.0);
  EXPECT_DOUBLE_EQ(stats.atomic_ops, 5000.0 * 8.0);
  EXPECT_DOUBLE_EQ(stats.atomic_slots, 100.0 * 8.0);

  simgpu::KernelStats priv;
  apply_scatter_stats(priv, ScatterStrategy::kPrivatized, 100, 8, 5000.0);
  EXPECT_DOUBLE_EQ(priv.atomic_ops, 0.0);
  EXPECT_GT(priv.bytes_streamed, 0.0);  // tile zero/accumulate/reduce traffic
  EXPECT_GT(priv.flops, 0.0);           // the tree combine

  simgpu::KernelStats sorted;
  apply_scatter_stats(sorted, ScatterStrategy::kSorted, 100, 8, 5000.0);
  EXPECT_DOUBLE_EQ(sorted.atomic_ops, 0.0);
  EXPECT_DOUBLE_EQ(sorted.bytes_streamed, 5000.0 * sizeof(index_t));
}

TEST(Scatter, CostModelRanksAtomicVsPrivatizedWithContention) {
  // Hand-computable collision regimes (A100, R=32, 1e6 updates-per-call):
  //  * mode 512: 16384 output words; saturated lanes collide constantly, the
  //    contention factor is 1 + (lanes-1)/16384 >> 1 and atomic loses to the
  //    privatized tiles' streamed traffic;
  //  * mode 2^24: 5.4e8 output words; the factor is ~1.0004, while the
  //    privatized tiles must stream/reduce 13x the (huge) output — atomic
  //    wins.
  const simgpu::DeviceSpec spec = simgpu::a100();
  const index_t rank = 32;
  const double nnz = 1e6;
  auto scatter_cost = [&](ScatterStrategy s, index_t mode_len) {
    simgpu::KernelStats stats;
    stats.parallel_items = nnz;
    apply_scatter_stats(stats, s, mode_len, rank, nnz);
    return simgpu::model_time(stats, spec).total_s;
  };
  EXPECT_LT(scatter_cost(ScatterStrategy::kPrivatized, 512),
            scatter_cost(ScatterStrategy::kAtomic, 512));
  EXPECT_LT(scatter_cost(ScatterStrategy::kAtomic, 1 << 24),
            scatter_cost(ScatterStrategy::kPrivatized, 1 << 24));

  // The contention factor itself, on hand-picked numbers: saturated lanes
  // over 16384 slots.
  const double lanes = std::min(nnz, spec.saturation_parallelism);
  const simgpu::KernelStats atomic_short = [&] {
    simgpu::KernelStats s;
    s.parallel_items = nnz;
    apply_scatter_stats(s, ScatterStrategy::kAtomic, 512, rank, nnz);
    return s;
  }();
  const double expected =
      atomic_short.atomic_ops *
      (1.0 + (lanes - 1.0) / atomic_short.atomic_slots) / spec.atomic_rate;
  EXPECT_NEAR(simgpu::model_time(atomic_short, spec).atomic_s, expected,
              1e-12 * expected);
}

// Regression (scatter-engine audit): the per-nonzero Khatri-Rao row lives in
// reusable thread_local scratch; every contribution must fully re-seed it.
// A nonzero whose factor rows are all zero would expose any stale values
// left by the previous nonzero handled on the same thread.
TEST(Scatter, ZeroFactorRowDoesNotLeakStaleScratch) {
  SparseTensor t({1, 3});
  t.append({0, 0}, 5.0);  // contributes 5 * B(0,:)
  t.append({0, 1}, 7.0);  // B(1,:) = 0 -> contributes exactly nothing
  t.append({0, 2}, 3.0);  // contributes 3 * B(2,:)
  Matrix a(1, 2), b(3, 2);
  b(0, 0) = 1.0;
  b(0, 1) = 2.0;
  b(1, 0) = 0.0;
  b(1, 1) = 0.0;
  b(2, 0) = 4.0;
  b(2, 1) = 0.5;
  for (ScatterStrategy strategy :
       {ScatterStrategy::kAtomic, ScatterStrategy::kPrivatized,
        ScatterStrategy::kSorted}) {
    Matrix out(1, 2);
    mttkrp_coo(t, {a, b}, 0, out, explicit_strategy(strategy));
    EXPECT_DOUBLE_EQ(out(0, 0), 5.0 * 1.0 + 3.0 * 4.0)
        << scatter_strategy_name(strategy);
    EXPECT_DOUBLE_EQ(out(0, 1), 5.0 * 2.0 + 3.0 * 0.5)
        << scatter_strategy_name(strategy);
  }
}

TEST(Mttkrp, DatasetAnalogAllFormatsAgree) {
  // End-to-end cross-format agreement on a realistic skewed analog.
  DatasetAnalog analog = make_analog(dataset_by_name("Uber"), 5000);
  const SparseTensor& t = analog.tensor;
  const auto factors = random_factors(t, 8, 77);
  const AltoTensor alto(t);
  const BlcoTensor blco(t, 1024);
  simgpu::Device dev(simgpu::a100());
  for (int mode = 0; mode < t.num_modes(); ++mode) {
    Matrix want(t.dim(mode), 8);
    mttkrp_ref(t, factors, mode, want);
    Matrix got_csf(t.dim(mode), 8), got_alto(t.dim(mode), 8),
        got_blco(t.dim(mode), 8);
    CsfTensor csf(t, mode);
    mttkrp_csf(csf, factors, got_csf);
    mttkrp_alto(alto, factors, mode, got_alto);
    mttkrp_blco(dev, blco, factors, mode, got_blco);
    EXPECT_LT(max_abs_diff(got_csf, want), 1e-9) << "csf mode " << mode;
    EXPECT_LT(max_abs_diff(got_alto, want), 1e-9) << "alto mode " << mode;
    EXPECT_LT(max_abs_diff(got_blco, want), 1e-9) << "blco mode " << mode;
  }
}

}  // namespace
}  // namespace cstf
