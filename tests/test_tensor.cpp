// Unit tests for src/tensor: COO container, .tns IO, dense tensor,
// generators, dataset analogs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "tensor/coo.hpp"
#include "tensor/datasets.hpp"
#include "tensor/dense.hpp"
#include "tensor/generate.hpp"
#include "tensor/io.hpp"

namespace cstf {
namespace {

SparseTensor small_tensor() {
  SparseTensor t({3, 4, 2});
  t.append({0, 0, 0}, 1.0);
  t.append({2, 3, 1}, 2.0);
  t.append({1, 2, 0}, 3.0);
  t.append({2, 0, 1}, 4.0);
  return t;
}

TEST(SparseTensor, ConstructionAndAppend) {
  SparseTensor t = small_tensor();
  EXPECT_EQ(t.num_modes(), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.nnz(), 4);
  EXPECT_NO_THROW(t.validate());
}

TEST(SparseTensor, AppendOutOfRangeThrows) {
  SparseTensor t({2, 2});
  index_t bad[2] = {0, 2};
  EXPECT_THROW(t.append(bad, 1.0), Error);
  index_t neg[2] = {-1, 0};
  EXPECT_THROW(t.append(neg, 1.0), Error);
}

TEST(SparseTensor, SortByModeOrdersLexicographically) {
  SparseTensor t = small_tensor();
  t.sort_by_mode(0);
  const auto& i0 = t.indices(0);
  for (std::size_t i = 1; i < i0.size(); ++i) EXPECT_LE(i0[i - 1], i0[i]);
  // Ties on mode 0 broken by the following modes: (2,0,1) before (2,3,1).
  EXPECT_EQ(i0[2], 2);
  EXPECT_EQ(t.indices(1)[2], 0);
  EXPECT_EQ(t.indices(1)[3], 3);
}

TEST(SparseTensor, SortByNonZeroLeadMode) {
  SparseTensor t = small_tensor();
  t.sort_by_mode(1);
  const auto& i1 = t.indices(1);
  for (std::size_t i = 1; i < i1.size(); ++i) EXPECT_LE(i1[i - 1], i1[i]);
}

TEST(SparseTensor, DedupSumsValues) {
  SparseTensor t({2, 2});
  t.append({0, 1}, 1.5);
  t.append({0, 1}, 2.5);
  t.append({1, 0}, 1.0);
  t.sort_by_mode(0);
  const index_t removed = t.dedup_sum();
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_DOUBLE_EQ(t.values()[0], 4.0);
}

TEST(SparseTensor, FrobeniusNormAndDensity) {
  SparseTensor t = small_tensor();
  EXPECT_DOUBLE_EQ(t.frobenius_norm_sq(), 1 + 4 + 9 + 16);
  EXPECT_DOUBLE_EQ(t.density(), 4.0 / 24.0);
}

TEST(SparseTensor, PermuteModesSwapsDimsAndIndices) {
  SparseTensor t = small_tensor();
  SparseTensor p = t.permute_modes({2, 0, 1});
  EXPECT_EQ(p.dim(0), 2);
  EXPECT_EQ(p.dim(1), 3);
  EXPECT_EQ(p.dim(2), 4);
  EXPECT_EQ(p.nnz(), t.nnz());
  // First nonzero (0,0,0) stays (0,0,0); second (2,3,1) becomes (1,2,3).
  EXPECT_EQ(p.indices(0)[1], 1);
  EXPECT_EQ(p.indices(1)[1], 2);
  EXPECT_EQ(p.indices(2)[1], 3);
}

TEST(SparseTensor, ShapeString) {
  EXPECT_EQ(small_tensor().shape_string(), "3 x 4 x 2 (nnz=4)");
}

TEST(TnsIo, RoundTripPreservesEverything) {
  SparseTensor t = small_tensor();
  std::stringstream ss;
  write_tns(t, ss);
  SparseTensor back = read_tns(ss, t.dims());
  ASSERT_EQ(back.nnz(), t.nnz());
  for (index_t i = 0; i < t.nnz(); ++i) {
    for (int m = 0; m < 3; ++m) {
      EXPECT_EQ(back.indices(m)[static_cast<std::size_t>(i)],
                t.indices(m)[static_cast<std::size_t>(i)]);
    }
    EXPECT_DOUBLE_EQ(back.values()[static_cast<std::size_t>(i)],
                     t.values()[static_cast<std::size_t>(i)]);
  }
}

TEST(TnsIo, ParsesCommentsAndInfersDims) {
  std::stringstream ss;
  ss << "# FROSTT header comment\n"
     << "\n"
     << "1 1 1 5.0\n"
     << "3 4 2 -1.25\n";
  SparseTensor t = read_tns(ss);
  EXPECT_EQ(t.num_modes(), 3);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.dim(2), 2);
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_DOUBLE_EQ(t.values()[1], -1.25);
  // 1-based -> 0-based conversion.
  EXPECT_EQ(t.indices(0)[1], 2);
}

TEST(TnsIo, ZeroBasedIndexRejected) {
  std::stringstream ss;
  ss << "0 1 2.0\n";
  EXPECT_THROW(read_tns(ss), Error);
}

TEST(TnsIo, EmptyStreamRejected) {
  std::stringstream ss;
  ss << "# only comments\n";
  EXPECT_THROW(read_tns(ss), Error);
}

TEST(BinaryIo, RoundTripPreservesEverything) {
  RandomTensorParams params;
  params.dims = {30, 20, 10};
  params.target_nnz = 500;
  params.seed = 55;
  const SparseTensor t = generate_random(params);
  const std::string path = ::testing::TempDir() + "/roundtrip.cstf";
  write_binary_file(t, path);
  const SparseTensor back = read_binary_file(path);
  ASSERT_EQ(back.nnz(), t.nnz());
  ASSERT_EQ(back.dims(), t.dims());
  for (int m = 0; m < 3; ++m) EXPECT_EQ(back.indices(m), t.indices(m));
  EXPECT_EQ(back.values(), t.values());
}

TEST(BinaryIo, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/not_cstf.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGEDATA-LONG-ENOUGH-TO-READ";
  }
  EXPECT_THROW(read_binary_file(path), Error);
}

TEST(BinaryIo, RejectsTruncatedFile) {
  RandomTensorParams params;
  params.dims = {10, 10};
  params.target_nnz = 100;
  params.seed = 56;
  const SparseTensor t = generate_random(params);
  const std::string full = ::testing::TempDir() + "/full.cstf";
  write_binary_file(t, full);
  // Copy only the first half of the bytes.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string cut = ::testing::TempDir() + "/cut.cstf";
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(read_binary_file(cut), Error);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/tensor.cstf"), Error);
}

TEST(DenseTensor, OffsetIsMode0Fastest) {
  DenseTensor d({3, 4, 2});
  index_t c0[3] = {1, 0, 0};
  index_t c1[3] = {0, 1, 0};
  index_t c2[3] = {0, 0, 1};
  EXPECT_EQ(d.offset(c0), 1);
  EXPECT_EQ(d.offset(c1), 3);
  EXPECT_EQ(d.offset(c2), 12);
}

TEST(DenseTensor, FromSparseMaterializes) {
  SparseTensor s = small_tensor();
  DenseTensor d = DenseTensor::from_sparse(s);
  EXPECT_DOUBLE_EQ(d.at({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(d.at({2, 3, 1}), 2.0);
  EXPECT_DOUBLE_EQ(d.at({0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(d.frobenius_norm_sq(), s.frobenius_norm_sq());
}

TEST(DenseTensor, FromFactorsMatchesManualOuterProduct) {
  // Rank-1: X(i,j) = a_i * b_j.
  Matrix a = Matrix::from_rows({{1}, {2}, {3}});
  Matrix b = Matrix::from_rows({{4}, {5}});
  DenseTensor x = DenseTensor::from_factors({a, b}, {3, 2});
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(x.at({i, j}), a(i, 0) * b(j, 0));
    }
  }
}

TEST(DenseMttkrp, MatchesManualComputationRank1) {
  Matrix a = Matrix::from_rows({{1}, {2}, {3}});
  Matrix b = Matrix::from_rows({{4}, {5}});
  DenseTensor x = DenseTensor::from_factors({a, b}, {3, 2});
  // Mode-0 MTTKRP of a matrix X with factor b is X * b.
  Matrix out(3, 1);
  dense_mttkrp(x, {a, b}, 0, out);
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(out(i, 0), x.at({i, 0}) * 4 + x.at({i, 1}) * 5);
  }
}

TEST(Generate, RandomTensorHasRequestedShapeAndSortedIndices) {
  RandomTensorParams params;
  params.dims = {50, 40, 30};
  params.target_nnz = 2000;
  params.seed = 3;
  SparseTensor t = generate_random(params);
  EXPECT_EQ(t.num_modes(), 3);
  // Skewed draws over a 60K-cell space collide; well over a quarter must
  // survive the merge.
  EXPECT_GT(t.nnz(), 500);
  EXPECT_LE(t.nnz(), 2000);
  EXPECT_NO_THROW(t.validate());
  const auto& i0 = t.indices(0);
  for (std::size_t i = 1; i < i0.size(); ++i) EXPECT_LE(i0[i - 1], i0[i]);
}

TEST(Generate, DeterministicForFixedSeed) {
  RandomTensorParams params;
  params.dims = {20, 20};
  params.target_nnz = 300;
  params.seed = 9;
  SparseTensor a = generate_random(params);
  SparseTensor b = generate_random(params);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.indices(0)[static_cast<std::size_t>(i)],
              b.indices(0)[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(a.values()[static_cast<std::size_t>(i)],
                     b.values()[static_cast<std::size_t>(i)]);
  }
}

TEST(Generate, ZipfSkewConcentratesNonzeros) {
  RandomTensorParams skewed;
  skewed.dims = {1000, 1000};
  skewed.target_nnz = 20000;
  skewed.mode_dist = {{1.2}, {1.2}};
  skewed.seed = 4;
  SparseTensor t = generate_random(skewed);
  // Heavy skew concentrates the nonzeros: the 10 most-loaded mode-0 indices
  // must hold far more than their uniform share (1%) of the nonzeros.
  std::vector<index_t> counts(1000, 0);
  for (index_t v : t.indices(0)) ++counts[static_cast<std::size_t>(v)];
  std::sort(counts.rbegin(), counts.rend());
  index_t top10 = 0;
  for (int k = 0; k < 10; ++k) top10 += counts[static_cast<std::size_t>(k)];
  EXPECT_GT(static_cast<double>(top10), 0.1 * static_cast<double>(t.nnz()));
}

TEST(Generate, LowRankTensorIsNonNegativeAndMatchesModel) {
  LowRankTensorParams params;
  params.dims = {30, 20, 10};
  params.rank = 4;
  params.target_nnz = 500;
  params.noise = 0.0;
  params.seed = 5;
  LowRankTensor lr = generate_low_rank(params);
  ASSERT_EQ(lr.factors.size(), 3u);
  EXPECT_EQ(lr.factors[0].rows(), 30);
  EXPECT_EQ(lr.factors[0].cols(), 4);
  for (real_t v : lr.tensor.values()) EXPECT_GE(v, 0.0);
  // With zero noise every sampled value equals the model value.
  for (index_t i = 0; i < std::min<index_t>(lr.tensor.nnz(), 50); ++i) {
    real_t want = 0.0;
    for (index_t r = 0; r < 4; ++r) {
      real_t prod = 1.0;
      for (int m = 0; m < 3; ++m) {
        prod *= lr.factors[static_cast<std::size_t>(m)](
            lr.tensor.indices(m)[static_cast<std::size_t>(i)], r);
      }
      want += prod;
    }
    EXPECT_NEAR(lr.tensor.values()[static_cast<std::size_t>(i)], want, 1e-9);
  }
}

TEST(Datasets, RegistryHasAllTenPaperTensors) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs.front().name, "NIPS");
  EXPECT_EQ(specs.back().name, "Amazon");
  // Ordered by nonzero count, as in Table 2.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LE(specs[i - 1].full_nnz, specs[i].full_nnz);
  }
}

TEST(Datasets, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(dataset_by_name("Delicious").full_dims.size(), 4u);
  EXPECT_THROW(dataset_by_name("nonexistent"), Error);
}

TEST(Datasets, DensityMatchesTable2OrderOfMagnitude) {
  // Spot-check two densities against the paper's Table 2.
  const double nips = dataset_by_name("NIPS").density();
  EXPECT_GT(nips, 1e-7);
  EXPECT_LT(nips, 1e-5);  // paper: 1.8e-6
  const double amazon = dataset_by_name("Amazon").density();
  EXPECT_GT(amazon, 1e-11);
  EXPECT_LT(amazon, 1e-9);  // paper: 1.1e-10
}

TEST(Datasets, AnalogPreservesModeRatiosAndScales) {
  DatasetAnalog analog = make_analog(dataset_by_name("NELL2"), 20000);
  EXPECT_EQ(analog.tensor.num_modes(), 3);
  EXPECT_GT(analog.tensor.nnz(), 10000);
  // nnz_scale maps analog nnz back to the full 76.9M.
  EXPECT_NEAR(analog.nnz_scale() * static_cast<double>(analog.tensor.nnz()),
              76.9e6, 1.0);
  // Mode-length ratios are approximately preserved (NELL2: 12.1K:9.2K:28.8K).
  const double r01 = static_cast<double>(analog.tensor.dim(0)) /
                     static_cast<double>(analog.tensor.dim(1));
  EXPECT_NEAR(r01, 12100.0 / 9200.0, 0.3);
}

TEST(Datasets, AnalogClampsTinyModes) {
  // Vast's third mode has length 2 and must survive scaling.
  DatasetAnalog analog = make_analog(dataset_by_name("Vast"), 5000);
  EXPECT_EQ(analog.tensor.dim(2), 2);
}

TEST(Datasets, AnalogIsDeterministic) {
  DatasetAnalog a = make_analog(dataset_by_name("Uber"), 3000);
  DatasetAnalog b = make_analog(dataset_by_name("Uber"), 3000);
  ASSERT_EQ(a.tensor.nnz(), b.tensor.nnz());
  EXPECT_DOUBLE_EQ(a.tensor.frobenius_norm_sq(), b.tensor.frobenius_norm_sq());
}

class AllDatasetAnalogs : public ::testing::TestWithParam<const char*> {};

TEST_P(AllDatasetAnalogs, GeneratesValidTensor) {
  DatasetAnalog analog = make_analog(dataset_by_name(GetParam()), 4000);
  EXPECT_NO_THROW(analog.tensor.validate());
  EXPECT_GT(analog.tensor.nnz(), 0);
  EXPECT_EQ(analog.tensor.num_modes(),
            static_cast<int>(analog.spec.full_dims.size()));
  for (int m = 0; m < analog.tensor.num_modes(); ++m) {
    EXPECT_GE(analog.dim_scale(m), 1.0) << "mode " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, AllDatasetAnalogs,
                         ::testing::Values("NIPS", "Uber", "Chicago", "Vast",
                                           "Enron", "NELL2", "Flickr",
                                           "Delicious", "NELL1", "Amazon"));

}  // namespace
}  // namespace cstf
