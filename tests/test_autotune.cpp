// Autotuning subsystem tests: the CSTFTUNE cache (round trip, LRU,
// corruption taxonomy), the deterministic trial protocol, policy dispatch,
// the golden decision tables for the cost-model resolvers the trials
// calibrate against, and the serve-batcher tuner.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "autotune/tuning.hpp"
#include "cstf/framework.hpp"
#include "formats/blco.hpp"
#include "tensor/datasets.hpp"
#include "tensor/generate.hpp"

namespace cstf {
namespace {

using autotune::BatcherCalibration;
using autotune::BatcherTuning;
using autotune::TuningCache;
using autotune::TuningKey;
using autotune::TuningOptions;
using autotune::TuningOutcome;
using autotune::TuningPolicy;
using autotune::TuningRecord;
using autotune::TuneInputs;

SparseTensor random_tensor(std::vector<index_t> dims, index_t nnz,
                           std::uint64_t seed) {
  RandomTensorParams p;
  p.dims = std::move(dims);
  p.target_nnz = nnz;
  p.seed = seed;
  return generate_random(p);
}

TuningKey key_of(std::uint64_t tag) {
  TuningKey k;
  k.device_digest = 0x1000 + tag;
  k.tensor_digest = 0x2000 + tag;
  k.rank = 16 + tag;
  k.options_digest = 0x3000 + tag;
  return k;
}

TuningRecord sample_record(int modes) {
  TuningRecord r;
  for (int m = 0; m < modes; ++m) {
    r.scatter_per_mode.push_back(m % 2 == 0 ? ScatterStrategy::kSorted
                                            : ScatterStrategy::kPrivatized);
  }
  r.mttkrp_mode = MttkrpMode::kDimtree;
  r.dimtree_budget_bytes = 1234.5;
  r.chunks_per_worker = 8;
  r.batcher_linger_s = 0.0035;
  r.batcher_max_batch = 24;
  r.batcher_arrival_rate_rps = 512.25;
  r.measured_best_s = 0.0011;
  r.measured_model_s = 0.0017;
  r.modeled_best_s = 0.00042;
  r.modeled_model_s = 0.00057;
  r.seed = 0x74756e65;
  r.best_of = 3;
  r.sample_nnz = 4096;
  r.provenance = "unit-test record";
  return r;
}

void expect_records_equal(const TuningRecord& a, const TuningRecord& b) {
  EXPECT_EQ(a.scatter_per_mode, b.scatter_per_mode);
  EXPECT_EQ(a.mttkrp_mode, b.mttkrp_mode);
  EXPECT_EQ(a.dimtree_budget_bytes, b.dimtree_budget_bytes);
  EXPECT_EQ(a.chunks_per_worker, b.chunks_per_worker);
  EXPECT_EQ(a.batcher_linger_s, b.batcher_linger_s);
  EXPECT_EQ(a.batcher_max_batch, b.batcher_max_batch);
  EXPECT_EQ(a.batcher_arrival_rate_rps, b.batcher_arrival_rate_rps);
  EXPECT_EQ(a.measured_best_s, b.measured_best_s);
  EXPECT_EQ(a.measured_model_s, b.measured_model_s);
  EXPECT_EQ(a.modeled_best_s, b.modeled_best_s);
  EXPECT_EQ(a.modeled_model_s, b.modeled_model_s);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.best_of, b.best_of);
  EXPECT_EQ(a.sample_nnz, b.sample_nnz);
  EXPECT_EQ(a.provenance, b.provenance);
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ModelIoStatus load_status(const std::string& path) {
  try {
    TuningCache::load(path);
  } catch (const ModelIoError& e) {
    return e.status();
  }
  ADD_FAILURE() << "TuningCache::load(" << path << ") unexpectedly succeeded";
  return ModelIoStatus::kOpenFailed;
}

TEST(TuningCacheTest, RoundTripBitIdentical) {
  const std::string path = ::testing::TempDir() + "/roundtrip.cstftune";
  TuningCache cache(8);
  cache.put(key_of(1), sample_record(3));
  cache.put(key_of(2), sample_record(4));
  cache.save(path);

  TuningCache loaded = TuningCache::load(path, 8);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.hits(), 0);
  EXPECT_EQ(loaded.misses(), 0);
  const TuningRecord* a = loaded.find(key_of(1));
  const TuningRecord* b = loaded.find(key_of(2));
  ASSERT_NE(a, nullptr);
  expect_records_equal(*a, sample_record(3));
  ASSERT_NE(b, nullptr);
  expect_records_equal(*b, sample_record(4));
  EXPECT_EQ(loaded.hits(), 2);

  // Second save of the loaded cache is bit-identical to re-serializing the
  // same entries (modulo the LRU order the finds above established).
  const std::string path2 = ::testing::TempDir() + "/roundtrip2.cstftune";
  loaded.save(path2);
  TuningCache again = TuningCache::load(path2, 8);
  ASSERT_EQ(again.size(), 2u);
}

TEST(TuningCacheTest, LruEvictionAndCounters) {
  TuningCache cache(2);
  cache.put(key_of(1), sample_record(3));
  cache.put(key_of(2), sample_record(3));
  EXPECT_NE(cache.find(key_of(1)), nullptr);  // bump 1 ahead of 2
  cache.put(key_of(3), sample_record(3));     // evicts 2 (now the oldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(TuningCacheIo, CorruptionTaxonomy) {
  const std::string path = ::testing::TempDir() + "/taxonomy.cstftune";
  TuningCache cache(4);
  cache.put(key_of(7), sample_record(3));
  cache.save(path);
  const std::vector<char> good = read_bytes(path);
  ASSERT_GT(good.size(), 20u);

  // Missing file.
  EXPECT_EQ(load_status(::testing::TempDir() + "/no_such.cstftune"),
            ModelIoStatus::kOpenFailed);

  // Truncated: the trailing checksum is cut short.
  std::vector<char> truncated = good;
  truncated.resize(truncated.size() - 4);
  write_bytes(path, truncated);
  EXPECT_EQ(load_status(path), ModelIoStatus::kTruncated);

  // Bit flip in the stored checksum itself: everything parses, the digest
  // disagrees.
  std::vector<char> flipped = good;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x5a);
  write_bytes(path, flipped);
  EXPECT_EQ(load_status(path), ModelIoStatus::kChecksumMismatch);

  // Bit flip inside the payload (the provenance string lives near the end).
  std::vector<char> payload_flip = good;
  payload_flip[payload_flip.size() - 12] =
      static_cast<char>(payload_flip[payload_flip.size() - 12] ^ 0x01);
  write_bytes(path, payload_flip);
  EXPECT_EQ(load_status(path), ModelIoStatus::kChecksumMismatch);

  // Wrong format version (bytes 8..11, right after the 8-byte magic).
  std::vector<char> wrong_version = good;
  wrong_version[8] = static_cast<char>(0x7f);
  write_bytes(path, wrong_version);
  EXPECT_EQ(load_status(path), ModelIoStatus::kBadVersion);

  // Wrong magic.
  std::vector<char> bad_magic = good;
  bad_magic[0] = 'X';
  write_bytes(path, bad_magic);
  EXPECT_EQ(load_status(path), ModelIoStatus::kBadMagic);
}

TEST(TuningCacheIo, LoadOrEmptyTurnsEveryDefectIntoAnEmptyCache) {
  const std::string path = ::testing::TempDir() + "/defect.cstftune";
  TuningCache cache(4);
  cache.put(key_of(9), sample_record(3));
  cache.save(path);
  std::vector<char> bytes = read_bytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  write_bytes(path, bytes);

  TuningCache recovered = TuningCache::load_or_empty(path, 4);
  EXPECT_EQ(recovered.size(), 0u);
  // A cleanly missing file is also an empty cache, silently.
  TuningCache missing =
      TuningCache::load_or_empty(::testing::TempDir() + "/missing.cstftune", 4);
  EXPECT_EQ(missing.size(), 0u);
}

TEST(TuningTrials, SampleIsDeterministicAndBounded) {
  const SparseTensor x = random_tensor({64, 96, 128}, 5000, 21);
  const SparseTensor a = autotune::sample_nonzeros(x, 1000, 5);
  const SparseTensor b = autotune::sample_nonzeros(x, 1000, 5);
  ASSERT_EQ(a.nnz(), 1000);
  ASSERT_EQ(b.nnz(), 1000);
  EXPECT_EQ(a.dims(), x.dims());
  for (int m = 0; m < x.num_modes(); ++m) {
    EXPECT_EQ(a.indices(m), b.indices(m)) << "mode " << m;
  }
  EXPECT_EQ(a.values(), b.values());

  // Small tensors are passed through whole.
  const SparseTensor whole = autotune::sample_nonzeros(x, 100000, 5);
  EXPECT_EQ(whole.nnz(), x.nnz());
}

TEST(TuningTrials, DeterministicUnderFixedSeedOnModelClock) {
  const SparseTensor x = random_tensor({96, 128, 160}, 4000, 33);
  TuneInputs in;
  in.tensor = &x;
  in.rank = 8;
  in.spec = simgpu::a100();
  TuningOptions opts;
  opts.use_host_clock = false;  // rank by modeled time: fully deterministic
  opts.best_of = 1;
  opts.max_sample_nnz = 1000;

  const TuningRecord r1 = autotune::run_tuning_trials(in, opts);
  const TuningRecord r2 = autotune::run_tuning_trials(in, opts);
  EXPECT_EQ(r1.scatter_per_mode, r2.scatter_per_mode);
  EXPECT_EQ(r1.mttkrp_mode, r2.mttkrp_mode);
  EXPECT_EQ(r1.chunks_per_worker, r2.chunks_per_worker);
  EXPECT_EQ(r1.modeled_best_s, r2.modeled_best_s);
  EXPECT_EQ(r1.modeled_model_s, r2.modeled_model_s);
  EXPECT_EQ(r1.sample_nnz, 1000u);
  // Decision fields are concrete and applicable as-is.
  EXPECT_TRUE(autotune::record_applies(r1, in));
  // Without the host clock the chunk sweep has nothing to rank on.
  EXPECT_EQ(r1.chunks_per_worker, 0u);
}

TEST(TuningTrials, RecordAppliesValidation) {
  const SparseTensor x = random_tensor({64, 96, 128}, 3000, 41);
  TuneInputs in;
  in.tensor = &x;
  in.rank = 8;
  in.spec = simgpu::a100();

  TuningRecord good;
  good.scatter_per_mode = {ScatterStrategy::kSorted, ScatterStrategy::kAtomic,
                           ScatterStrategy::kPrivatized};
  good.mttkrp_mode = MttkrpMode::kFlat;
  good.chunks_per_worker = 4;
  EXPECT_TRUE(autotune::record_applies(good, in));

  TuningRecord wrong_modes = good;
  wrong_modes.scatter_per_mode.pop_back();
  EXPECT_FALSE(autotune::record_applies(wrong_modes, in));

  TuningRecord has_auto = good;
  has_auto.scatter_per_mode[1] = ScatterStrategy::kAuto;
  EXPECT_FALSE(autotune::record_applies(has_auto, in));

  TuningRecord auto_engine = good;
  auto_engine.mttkrp_mode = MttkrpMode::kAuto;
  EXPECT_FALSE(autotune::record_applies(auto_engine, in));

  TuneInputs det = in;
  det.scatter.deterministic = true;
  EXPECT_FALSE(autotune::record_applies(good, det));  // entry 1 is atomic

  TuningRecord tree = good;
  tree.mttkrp_mode = MttkrpMode::kDimtree;
  TuneInputs tiny_budget = in;
  tiny_budget.dimtree_budget_bytes = 1.0;
  EXPECT_FALSE(autotune::record_applies(tree, tiny_budget));

  TuneInputs no_scratch = in;
  no_scratch.scatter.privatization_budget_bytes = 1.0;
  EXPECT_FALSE(autotune::record_applies(good, no_scratch));  // privatized pick

  TuningRecord wild_chunks = good;
  wild_chunks.chunks_per_worker = 65;
  EXPECT_FALSE(autotune::record_applies(wild_chunks, in));
}

TEST(TuningResolve, ModelPolicyIsNoop) {
  const SparseTensor x = random_tensor({64, 96, 128}, 3000, 51);
  TuneInputs in;
  in.tensor = &x;
  in.rank = 8;
  in.spec = simgpu::a100();
  TuningOptions opts;  // policy defaults to kModel
  const TuningOutcome out = autotune::resolve_tuning(in, opts);
  EXPECT_FALSE(out.applied);
  EXPECT_FALSE(out.cache_hit);
  EXPECT_FALSE(out.trials_run);
}

TEST(TuningResolve, CachedSecondRunHitsWithoutTrials) {
  const SparseTensor x = random_tensor({96, 128, 160}, 4000, 61);
  const std::string path = ::testing::TempDir() + "/resolve.cstftune";
  std::filesystem::remove(path);

  TuneInputs in;
  in.tensor = &x;
  in.rank = 8;
  in.spec = simgpu::a100();
  TuningOptions opts;
  opts.policy = TuningPolicy::kCached;
  opts.cache_path = path;
  opts.use_host_clock = false;
  opts.best_of = 1;
  opts.max_sample_nnz = 1000;

  const TuningOutcome first = autotune::resolve_tuning(in, opts);
  EXPECT_TRUE(first.applied);
  EXPECT_TRUE(first.trials_run);
  EXPECT_FALSE(first.cache_hit);

  const TuningOutcome second = autotune::resolve_tuning(in, opts);
  EXPECT_TRUE(second.applied);
  EXPECT_FALSE(second.trials_run);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.record.scatter_per_mode, first.record.scatter_per_mode);
  EXPECT_EQ(second.record.mttkrp_mode, first.record.mttkrp_mode);

  // Counter-verified against the persisted file directly.
  TuningCache cache = TuningCache::load(path);
  ASSERT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(first.key), nullptr);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 0);

  // A different device is a key miss by construction.
  TuneInputs other = in;
  other.spec = simgpu::h100();
  EXPECT_EQ(cache.find(autotune::make_tuning_key(other, opts)), nullptr);
  EXPECT_EQ(cache.misses(), 1);
}

// Golden decision table for the scatter resolver across a
// (mode length, nnz, budget, determinism) sweep. Budgets are expressed as
// multiples of the exact tile footprint so the table is independent of the
// host's worker count.
TEST(DecisionGolden, ScatterStrategyTable) {
  const index_t rank = 16;
  const auto tile_footprint = [&](index_t mode_len, index_t nnz) {
    return static_cast<double>(privatized_tile_count(nnz)) *
           static_cast<double>(mode_len) * static_cast<double>(rank) * 8.0;
  };
  struct Case {
    index_t mode_len;
    index_t nnz;
    double budget_mult;  // x tile_footprint
    bool deterministic;
    ScatterStrategy want;
  };
  const Case table[] = {
      // Fits the scratch budget -> privatized, deterministic or not.
      {256, 4096, 2.0, false, ScatterStrategy::kPrivatized},
      {256, 4096, 2.0, true, ScatterStrategy::kPrivatized},
      // Over budget, deterministic -> sorted.
      {256, 4096, 0.5, true, ScatterStrategy::kSorted},
      // Over budget, high contention (16 updates/row) -> sorted.
      {256, 4096, 0.5, false, ScatterStrategy::kSorted},
      // Over budget, exactly at the 8 updates/row threshold -> sorted.
      {512, 4096, 0.5, false, ScatterStrategy::kSorted},
      // Over budget, low contention (1 update/row) -> atomic.
      {4096, 4096, 0.5, false, ScatterStrategy::kAtomic},
      {4096, 4096, 0.5, true, ScatterStrategy::kSorted},
  };
  for (const Case& c : table) {
    ScatterOptions opts;
    opts.deterministic = c.deterministic;
    opts.privatization_budget_bytes =
        c.budget_mult * tile_footprint(c.mode_len, c.nnz);
    EXPECT_EQ(resolve_scatter_strategy(opts, c.mode_len, rank, c.nnz), c.want)
        << "mode_len=" << c.mode_len << " nnz=" << c.nnz
        << " budget_mult=" << c.budget_mult << " det=" << c.deterministic;
  }

  // Explicit requests pass through — except atomic under determinism, which
  // re-resolves as auto.
  ScatterOptions forced;
  forced.strategy = ScatterStrategy::kSorted;
  EXPECT_EQ(resolve_scatter_strategy(forced, 4096, rank, 4096),
            ScatterStrategy::kSorted);
  ScatterOptions det_atomic;
  det_atomic.strategy = ScatterStrategy::kAtomic;
  det_atomic.deterministic = true;
  det_atomic.privatization_budget_bytes = 1.0;
  EXPECT_EQ(resolve_scatter_strategy(det_atomic, 4096, rank, 4096),
            ScatterStrategy::kSorted);
}

TEST(DecisionGolden, PerModeOverridesWinUnlessIllegal) {
  const index_t rank = 16;
  ScatterOptions opts;
  opts.privatization_budget_bytes = 1.0;  // auto path resolves over budget
  opts.per_mode = {ScatterStrategy::kPrivatized, ScatterStrategy::kAuto};

  // Concrete override wins even against the auto resolution.
  EXPECT_EQ(resolve_scatter_strategy_for_mode(opts, 0, 4096, rank, 4096),
            ScatterStrategy::kPrivatized);
  // kAuto entry falls through (low contention -> atomic).
  EXPECT_EQ(resolve_scatter_strategy_for_mode(opts, 1, 4096, rank, 4096),
            ScatterStrategy::kAtomic);
  // Modes beyond the vector fall through too.
  EXPECT_EQ(resolve_scatter_strategy_for_mode(opts, 2, 4096, rank, 4096),
            ScatterStrategy::kAtomic);

  // A cached atomic pick must not defeat determinism.
  ScatterOptions det = opts;
  det.deterministic = true;
  det.per_mode = {ScatterStrategy::kAtomic};
  EXPECT_EQ(resolve_scatter_strategy_for_mode(det, 0, 4096, rank, 4096),
            ScatterStrategy::kSorted);
}

// Golden decision table for the engine resolver: the budget cap is exact,
// and the full-scale analog decisions pin the roofline comparison on both a
// default and a forced-sorted scatter configuration.
TEST(DecisionGolden, MttkrpModeTable) {
  const SparseTensor small = random_tensor({29, 31, 23}, 1000, 73);
  const auto spec = simgpu::a100();

  // Chain over budget -> flat, regardless of everything else.
  EXPECT_EQ(resolve_mttkrp_mode(small, 8, ScatterOptions{}, spec, 1.0),
            MttkrpMode::kFlat);

  const index_t rank = 32;
  const auto decide = [&](const char* name, const ScatterOptions& opts) {
    const DatasetAnalog data = make_analog(name);
    const BlcoTensor blco(data.tensor);
    return resolve_mttkrp_mode(data.tensor, rank, opts, spec,
                               kDefaultDimtreeBudgetBytes,
                               blco.storage_bytes(), data.nnz_scale());
  };
  const ScatterOptions defaults;
  ScatterOptions sorted;
  sorted.strategy = ScatterStrategy::kSorted;
  // Cache-resident factors (NIPS/Uber): random traffic is nearly free, the
  // chain streaming only adds cost -> flat. Long-mode 4-way tensors: the
  // suffix derives shrink the working set -> dimtree. The forced-sorted
  // configuration prices both engines' scatters identically, so the
  // decisions must not flip.
  EXPECT_EQ(decide("NIPS", defaults), MttkrpMode::kFlat);
  EXPECT_EQ(decide("NIPS", sorted), MttkrpMode::kFlat);
  EXPECT_EQ(decide("Uber", defaults), MttkrpMode::kFlat);
  EXPECT_EQ(decide("Chicago", defaults), MttkrpMode::kDimtree);
  EXPECT_EQ(decide("Chicago", sorted), MttkrpMode::kDimtree);
  EXPECT_EQ(decide("Delicious", defaults), MttkrpMode::kDimtree);
}

TEST(BatcherTuner, DegenerateCalibrationKeepsDefaults) {
  const BatcherTuning t = autotune::tune_fold_in_batcher(BatcherCalibration{});
  EXPECT_EQ(t.max_batch, 64u);
  EXPECT_EQ(t.linger_s, 0.002);

  const BatcherTuning capped =
      autotune::tune_fold_in_batcher(BatcherCalibration{}, 16, 0.001);
  EXPECT_EQ(capped.max_batch, 16u);
  EXPECT_EQ(capped.linger_s, 0.001);
}

TEST(BatcherTuner, PicksThroughputKneeAndLinger) {
  BatcherCalibration cal;
  cal.solve_base_s = 1e-3;
  cal.solve_per_row_s = 1e-5;
  cal.arrival_rate_rps = 1000.0;
  const BatcherTuning t = autotune::tune_fold_in_batcher(cal);
  // Smallest B with B/(c0 + c1 B) >= 0.95 * thr(64): B = 59 for these
  // coefficients; the linger to collect 58 more arrivals at 1000 rps is
  // 58 ms, clamped to the 50 ms cap.
  EXPECT_EQ(t.max_batch, 59u);
  EXPECT_EQ(t.linger_s, 0.05);

  // No measured arrivals -> no reason to linger.
  cal.arrival_rate_rps = 0.0;
  EXPECT_EQ(autotune::tune_fold_in_batcher(cal).linger_s, 0.0);

  // A cheap base cost moves the knee to smaller batches.
  BatcherCalibration cheap = cal;
  cheap.arrival_rate_rps = 1000.0;
  cheap.solve_base_s = 1e-5;
  const BatcherTuning small = autotune::tune_fold_in_batcher(cheap);
  EXPECT_LT(small.max_batch, t.max_batch);
  EXPECT_GE(small.max_batch, 1u);
}

// The default kModel policy must stay the bit-identical legacy path: no
// trials, no per-mode picks, and two identical deterministic runs agree
// bitwise.
TEST(TuningFramework, ModelPolicyKeepsFactorsBitIdentical) {
  const SparseTensor x = random_tensor({48, 64, 80}, 2500, 91);
  FrameworkOptions options;
  options.rank = 4;
  options.max_iterations = 2;
  options.scatter.deterministic = true;

  CstfFramework a(x, options);
  a.run();
  EXPECT_FALSE(a.tuning().applied);
  EXPECT_TRUE(a.tuning().record.scatter_per_mode.empty());

  CstfFramework b(x, options);
  b.run();
  const KTensor ka = a.ktensor();
  const KTensor kb = b.ktensor();
  ASSERT_EQ(ka.factors.size(), kb.factors.size());
  for (std::size_t m = 0; m < ka.factors.size(); ++m) {
    EXPECT_EQ(max_abs_diff(ka.factors[m], kb.factors[m]), 0.0) << "mode " << m;
  }
}

// kMeasure through the framework: the tuned run must still produce a valid
// factorization and report an applied, concrete decision.
TEST(TuningFramework, MeasurePolicyAppliesConcreteDecision) {
  const SparseTensor x = random_tensor({48, 64, 80}, 2500, 91);
  FrameworkOptions options;
  options.rank = 4;
  options.max_iterations = 2;
  options.tuning.policy = TuningPolicy::kMeasure;
  options.tuning.best_of = 1;
  options.tuning.max_sample_nnz = 800;
  options.tuning.use_host_clock = false;

  CstfFramework framework(x, options);
  framework.run();
  const TuningOutcome& out = framework.tuning();
  EXPECT_TRUE(out.applied);
  EXPECT_TRUE(out.trials_run);
  ASSERT_EQ(out.record.scatter_per_mode.size(),
            static_cast<std::size_t>(x.num_modes()));
  for (ScatterStrategy s : out.record.scatter_per_mode) {
    EXPECT_NE(s, ScatterStrategy::kAuto);
  }
  EXPECT_NE(framework.resolved_mttkrp_mode(), MttkrpMode::kAuto);
  framework.ktensor().validate();
}

}  // namespace
}  // namespace cstf
