// Unit tests for src/common: RNG, Zipf sampler, timers, errors, env.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/radix_sort.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace cstf {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(11);
  constexpr std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  constexpr int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], draws / static_cast<int>(n), 600) << "value " << v;
  }
}

TEST(Rng, UniformIndexOfOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // Child and parent outputs should not coincide.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 2);
}

TEST(Zipf, SamplesStayInRange) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.1);
  for (int i = 0; i < 10000; ++i) {
    const index_t k = zipf(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 100);
  }
}

TEST(Zipf, FrequenciesDecreaseWithRank) {
  Rng rng(19);
  ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf(rng)];
  // Head must dominate the tail decisively.
  EXPECT_GT(counts[0], counts[9] * 2);
  EXPECT_GT(counts[0], counts[49] * 10);
}

TEST(Zipf, AlphaZeroIsApproximatelyUniform) {
  Rng rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[zipf(rng)];
  for (int v = 0; v < 10; ++v) {
    EXPECT_NEAR(counts[v], draws / 10, draws / 50) << "value " << v;
  }
}

TEST(Zipf, SingleElementDomain) {
  Rng rng(29);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0);
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, HeadMassGrowsWithAlpha) {
  const double alpha = GetParam();
  Rng rng(31);
  ZipfSampler zipf(1000, alpha);
  int head = 0;
  constexpr int draws = 50000;
  for (int i = 0; i < draws; ++i) head += (zipf(rng) < 10);
  // With alpha >= 0.8 the top-1% of ranks should hold well above the uniform
  // share (1%).
  EXPECT_GT(head, draws / 50);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5));

TEST(RadixSort, MatchesComparisonSortOnRandomKeys) {
  Rng rng(61);
  std::vector<lco_t> keys(5000);
  std::vector<index_t> payload(5000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng();
    payload[i] = static_cast<index_t>(i);
  }
  std::vector<lco_t> want = keys;
  std::sort(want.begin(), want.end());
  std::vector<lco_t> original = keys;
  radix_sort_pairs(keys, payload);
  EXPECT_EQ(keys, want);
  // Payload carries the original position of each key.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(original[static_cast<std::size_t>(payload[i])], keys[i]);
  }
}

TEST(RadixSort, StableForDuplicateKeys) {
  std::vector<lco_t> keys = {7, 3, 7, 3, 7};
  std::vector<index_t> payload = {0, 1, 2, 3, 4};
  radix_sort_pairs(keys, payload);
  EXPECT_EQ(keys, (std::vector<lco_t>{3, 3, 7, 7, 7}));
  EXPECT_EQ(payload, (std::vector<index_t>{1, 3, 0, 2, 4}));
}

TEST(RadixSort, HandlesEdgeInputs) {
  std::vector<lco_t> empty_keys;
  std::vector<index_t> empty_payload;
  EXPECT_NO_THROW(radix_sort_pairs(empty_keys, empty_payload));

  std::vector<lco_t> one = {42};
  std::vector<index_t> one_p = {0};
  radix_sort_pairs(one, one_p);
  EXPECT_EQ(one[0], 42u);

  // Already sorted and reverse sorted.
  std::vector<lco_t> sorted = {1, 2, 3, 4};
  std::vector<index_t> sp = {0, 1, 2, 3};
  radix_sort_pairs(sorted, sp);
  EXPECT_EQ(sorted, (std::vector<lco_t>{1, 2, 3, 4}));
  std::vector<lco_t> reversed = {4, 3, 2, 1};
  std::vector<index_t> rp = {0, 1, 2, 3};
  radix_sort_pairs(reversed, rp);
  EXPECT_EQ(reversed, (std::vector<lco_t>{1, 2, 3, 4}));
  EXPECT_EQ(rp, (std::vector<index_t>{3, 2, 1, 0}));
}

TEST(RadixSort, AllDuplicateKeysKeepPayloadOrder) {
  // The degenerate single-segment case of the sorted-scatter plans: every
  // nonzero targets the same output row. Stability means the payload must
  // come back untouched (and in particular not be scrambled by any skipped
  // counting passes).
  std::vector<lco_t> keys(257, 5);
  std::vector<index_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<index_t>(i);
  }
  radix_sort_pairs(keys, payload);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(keys[i], 5u);
    ASSERT_EQ(payload[i], static_cast<index_t>(i));
  }
}

TEST(RadixSort, FullWidth64BitKeys) {
  std::vector<lco_t> keys = {~lco_t{0}, 0, lco_t{1} << 63, 1};
  std::vector<index_t> payload = {0, 1, 2, 3};
  radix_sort_pairs(keys, payload);
  EXPECT_EQ(keys[0], 0u);
  EXPECT_EQ(keys[3], ~lco_t{0});
  EXPECT_EQ(payload, (std::vector<index_t>{1, 3, 2, 0}));
}

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(PhaseTimer, AccumulatesAcrossScopes) {
  PhaseTimer pt;
  pt.add(phase::kGram, 1.0);
  pt.add(phase::kGram, 2.0);
  pt.add(phase::kMttkrp, 0.5);
  EXPECT_DOUBLE_EQ(pt.total(phase::kGram), 3.0);
  EXPECT_DOUBLE_EQ(pt.total(phase::kMttkrp), 0.5);
  EXPECT_DOUBLE_EQ(pt.total(phase::kUpdate), 0.0);
  EXPECT_DOUBLE_EQ(pt.grand_total(), 3.5);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.grand_total(), 0.0);
}

TEST(PhaseTimer, ScopeRecordsElapsedTime) {
  PhaseTimer pt;
  {
    auto s = pt.scope(phase::kUpdate);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GT(pt.total(phase::kUpdate), 0.0);
}

TEST(Log, LevelRoundTripsAndFiltersBelowThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are discarded without evaluating... the macro
  // must at least not crash at every level.
  CSTF_LOG_DEBUG("suppressed " << 1);
  CSTF_LOG_INFO("suppressed " << 2);
  set_log_level(LogLevel::kOff);
  CSTF_LOG_ERROR("also suppressed " << 3);
  set_log_level(before);
}

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    CSTF_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, CheckMsgIncludesStreamedDetail) {
  const int n = -4;
  try {
    CSTF_CHECK_MSG(n >= 0, "n=" << n);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("n=-4"), std::string::npos);
  }
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CSTF_CHECK(2 + 2 == 4));
}

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("CSTF_TEST_UNSET_VAR");
  EXPECT_EQ(env_int("CSTF_TEST_UNSET_VAR", 77), 77);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_EQ(env_string("CSTF_TEST_UNSET_VAR", "dflt"), "dflt");
}

TEST(Env, ParsesSetValues) {
  ::setenv("CSTF_TEST_SET_VAR", "42", 1);
  EXPECT_EQ(env_int("CSTF_TEST_SET_VAR", 0), 42);
  ::setenv("CSTF_TEST_SET_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_SET_VAR", 0.0), 2.25);
  ::setenv("CSTF_TEST_SET_VAR", "hello", 1);
  EXPECT_EQ(env_string("CSTF_TEST_SET_VAR", ""), "hello");
  ::unsetenv("CSTF_TEST_SET_VAR");
}

TEST(Env, UnparsableIntFallsBack) {
  ::setenv("CSTF_TEST_BAD_VAR", "not-a-number", 1);
  EXPECT_EQ(env_int("CSTF_TEST_BAD_VAR", 9), 9);
  ::unsetenv("CSTF_TEST_BAD_VAR");
}

TEST(Env, TrailingGarbageIsRejectedNotTruncated) {
  // strtoll would happily parse "8x" as 8; the strict parser must not.
  ::setenv("CSTF_TEST_BAD_VAR", "8x", 1);
  EXPECT_EQ(env_int("CSTF_TEST_BAD_VAR", 9), 9);
  ::setenv("CSTF_TEST_BAD_VAR", "1.5.3", 1);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_BAD_VAR", 2.5), 2.5);
  ::unsetenv("CSTF_TEST_BAD_VAR");
}

TEST(Env, EmptyValueFallsBack) {
  ::setenv("CSTF_TEST_BAD_VAR", "", 1);
  EXPECT_EQ(env_int("CSTF_TEST_BAD_VAR", 13), 13);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_BAD_VAR", 0.5), 0.5);
  ::unsetenv("CSTF_TEST_BAD_VAR");
}

TEST(Env, OverflowFallsBack) {
  ::setenv("CSTF_TEST_BAD_VAR", "99999999999999999999999999", 1);
  EXPECT_EQ(env_int("CSTF_TEST_BAD_VAR", 21), 21);
  ::setenv("CSTF_TEST_BAD_VAR", "1e999", 1);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_BAD_VAR", 3.5), 3.5);
  ::unsetenv("CSTF_TEST_BAD_VAR");
}

TEST(Env, AcceptsSurroundingWhitespaceAndSigns) {
  ::setenv("CSTF_TEST_SET_VAR", " 42 ", 1);
  EXPECT_EQ(env_int("CSTF_TEST_SET_VAR", 0), 42);
  ::setenv("CSTF_TEST_SET_VAR", "-12", 1);
  EXPECT_EQ(env_int("CSTF_TEST_SET_VAR", 0), -12);
  ::setenv("CSTF_TEST_SET_VAR", "-2.5e-3", 1);
  EXPECT_DOUBLE_EQ(env_double("CSTF_TEST_SET_VAR", 0.0), -2.5e-3);
  ::unsetenv("CSTF_TEST_SET_VAR");
}

}  // namespace
}  // namespace cstf
